"""Unit tests for the metrics registry."""

import json

import pytest

from repro.obs import (
    NULL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    active_or_none,
    canonical_json,
    current_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("hits", "", ())
        c.inc()
        c.inc(amount=4)
        assert c.value() == 5
        assert c.total() == 5

    def test_labels_keep_separate_series(self):
        c = Counter("hits", "", ("host",))
        c.inc(("alice",))
        c.inc(("bob",), 2)
        assert c.value(("alice",)) == 1
        assert c.value(("bob",)) == 2
        assert c.total() == 3

    def test_wrong_label_arity_rejected(self):
        c = Counter("hits", "", ("host",))
        with pytest.raises(ValueError):
            c.inc(())
        with pytest.raises(ValueError):
            c.inc(("a", "b"))

    def test_negative_increment_rejected(self):
        c = Counter("hits", "", ())
        with pytest.raises(ValueError):
            c.inc(amount=-1)

    def test_labelled_sorts_rows(self):
        c = Counter("hits", "", ("host",))
        c.inc(("zeta",))
        c.inc(("alpha",))
        assert [labels for labels, _ in c.labelled()] == [("alpha",), ("zeta",)]


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("depth", "", ())
        g.set(value=3)
        g.set(value=-1)
        assert g.value() == -1

    def test_track_max_keeps_high_water(self):
        g = Gauge("depth", "", ())
        g.track_max(value=5)
        g.track_max(value=2)
        assert g.value() == 5
        g.track_max(value=9)
        assert g.value() == 9


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("lat", "", (), buckets=(0.1, 1.0))
        assert h.buckets[-1] == float("inf")  # inf auto-appended
        h.observe(value=0.05)
        h.observe(value=0.5)
        h.observe(value=100.0)
        assert h.count() == 3
        state = h._values[()]
        assert state["counts"] == [1, 1, 1]
        assert state["sum"] == pytest.approx(100.55)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", "", (), buckets=(1.0, 0.1))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", "", (), buckets=())

    def test_bucket_counts_accessors(self):
        h = Histogram("lat", "", (), buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.6, 100.0):
            h.observe(value=value)
        assert h.bucket_counts() == [1, 2, 1]
        assert h.cumulative_counts() == [1, 3, 4]

    def test_bucket_counts_for_unseen_labels_are_zero(self):
        h = Histogram("lat", "", ("op",), buckets=(0.1,))
        assert h.bucket_counts(("get",)) == [0, 0]
        assert h.cumulative_counts(("get",)) == [0, 0]


class TestHistogramQuantile:
    def test_empty_histogram_returns_none(self):
        h = Histogram("lat", "", (), buckets=(0.1, 1.0))
        assert h.quantile(0.5) is None

    def test_unseen_labels_return_none(self):
        h = Histogram("lat", "", ("op",), buckets=(0.1,))
        h.observe(("get",), 0.05)
        assert h.quantile(0.5, ("put",)) is None

    def test_out_of_range_p_rejected(self):
        h = Histogram("lat", "", (), buckets=(0.1,))
        h.observe(value=0.05)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_single_bucket_interpolates_from_zero(self):
        h = Histogram("lat", "", (), buckets=(1.0,))
        for _ in range(4):
            h.observe(value=0.5)
        # all mass in [0, 1.0): median interpolates to the bucket midpoint
        assert h.quantile(0.5) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_interpolation_across_buckets(self):
        h = Histogram("lat", "", (), buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            h.observe(value=value)
        # p=0.5 -> target rank 2 lands at the end of the (1.0, 2.0] bucket's
        # first observation: 1.0 + (2.0-1.0) * (2-1)/2 = 1.5
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(0.25) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_error_bounded_by_bucket_width(self):
        h = Histogram("lat", "", (), buckets=(1.0, 2.0, 4.0, 8.0))
        values = [0.2, 0.9, 1.1, 1.9, 2.5, 3.9, 5.0, 7.0]
        for value in values:
            h.observe(value=value)
        for p, exact in ((0.25, 0.9), (0.5, 1.9), (0.75, 3.9)):
            estimate = h.quantile(p)
            # the documented contract: within one bucket width of truth
            assert abs(estimate - exact) <= 2.0

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        h = Histogram("lat", "", (), buckets=(1.0,))
        h.observe(value=50.0)  # lands in the auto-appended inf bucket
        assert h.quantile(0.5) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_per_label_series_are_independent(self):
        h = Histogram("lat", "", ("op",), buckets=(1.0, 10.0))
        h.observe(("fast",), 0.5)
        h.observe(("slow",), 5.0)
        assert h.quantile(1.0, ("fast",)) == pytest.approx(1.0)
        assert h.quantile(1.0, ("slow",)) > 1.0


class TestHistogramExport:
    """Regression: bucket counts were recorded but never exported — the
    text rendering showed only count/sum and no ``_bucket`` lines."""

    def _histogram_registry(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", help="latency", labels=("op",),
                          buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.6, 100.0):
            h.observe(("get",), value)
        return reg

    def test_render_text_emits_cumulative_bucket_lines(self):
        text = self._histogram_registry().render_text()
        assert 'repro_lat_bucket{op="get",le="0.1"} 1' in text
        assert 'repro_lat_bucket{op="get",le="1"} 3' in text
        assert 'repro_lat_bucket{op="get",le="+Inf"} 4' in text
        assert 'repro_lat_sum{op="get"} 101.15' in text
        assert 'repro_lat_count{op="get"} 4' in text

    def test_render_text_golden(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(0.5,)).observe(value=0.25)
        assert reg.render_text() == (
            "# TYPE repro_lat histogram\n"
            'repro_lat_bucket{le="0.5"} 1\n'
            'repro_lat_bucket{le="+Inf"} 1\n'
            "repro_lat_sum 0.25\n"
            "repro_lat_count 1\n"
        )

    def test_snapshot_includes_per_bucket_counts(self):
        snap = self._histogram_registry().snapshot()
        rows = snap["instruments"]["lat"]["values"]
        assert rows == [[["get"], {"counts": [1, 2, 1], "sum": 101.15,
                                   "count": 4}]]

    def test_snapshot_is_isolated_from_later_observations(self):
        reg = self._histogram_registry()
        snap = reg.snapshot()
        reg.get("lat").observe(("get",), 0.01)
        assert snap["instruments"]["lat"]["values"][0][1]["count"] == 4


class TestMerge:
    def test_counters_sum_per_label(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits", labels=("who",)).inc(("x",), 2)
        b.counter("hits", labels=("who",)).inc(("x",), 3)
        b.counter("hits", labels=("who",)).inc(("y",), 1)
        merged = a.merge(b)
        assert merged is a
        assert a.get("hits").value(("x",)) == 5
        assert a.get("hits").value(("y",)) == 1

    def test_gauges_take_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").track_max(value=7)
        b.gauge("depth").track_max(value=4)
        a.merge(b)
        assert a.get("depth").value() == 7
        b.gauge("depth").track_max(value=11)
        a.merge(b)
        assert a.get("depth").value() == 11

    def test_histograms_add_buckets_elementwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(0.1, 1.0)).observe(value=0.05)
        b.histogram("lat", buckets=(0.1, 1.0)).observe(value=0.5)
        b.histogram("lat", buckets=(0.1, 1.0)).observe(value=50.0)
        a.merge(b)
        assert a.get("lat").bucket_counts() == [1, 1, 1]
        assert a.get("lat").count() == 3

    def test_merge_into_empty_registry(self):
        src = MetricsRegistry()
        src.counter("hits").inc(amount=2)
        merged = MetricsRegistry().merge(src)
        assert merged.get("hits").value() == 2

    def test_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("thing").inc()
        b.gauge("thing").set(value=1)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_label_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("thing", labels=("x",)).inc(("1",))
        b.counter("thing", labels=("y",)).inc(("1",))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_bucket_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(0.1,)).observe(value=0.05)
        b.histogram("lat", buckets=(0.5,)).observe(value=0.05)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_sharded_merge_equals_serial_registry(self):
        """The sweep-runner invariant: N worker registries fold into
        exactly what one shared registry would have recorded."""
        def record(reg, values):
            for value in values:
                reg.counter("hits", labels=("who",)).inc(("x",))
                reg.gauge("depth").track_max(value=value)
                reg.histogram("lat", buckets=(0.1, 1.0)).observe(value=value)

        # binary fractions: float addition is exact, so the partition
        # into workers cannot perturb the histogram sums
        serial = MetricsRegistry()
        record(serial, [0.0625, 0.5, 3.0, 0.125])

        workers = [MetricsRegistry() for _ in range(2)]
        record(workers[0], [0.0625, 0.5])
        record(workers[1], [3.0, 0.125])
        merged = MetricsRegistry()
        for worker in workers:
            merged.merge(worker.snapshot())  # snapshots, as across processes
        assert canonical_json(merged.snapshot()) == canonical_json(serial.snapshot())

    def test_from_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels=("who",)).inc(("x",), 2)
        reg.gauge("depth").set(value=-3)
        reg.histogram("lat", buckets=(0.1,)).observe(value=0.05)
        clone = MetricsRegistry.from_snapshot(reg.snapshot())
        assert canonical_json(clone.snapshot()) == canonical_json(reg.snapshot())

    def test_round_trip_through_journal_json(self):
        """The campaign-journal path: snapshot -> canonical JSON text ->
        parse -> from_snapshot -> snapshot must be byte-identical, so a
        resumed sweep merges checkpointed snapshots exactly like the
        in-memory registries they saved."""
        reg = MetricsRegistry()
        reg.counter("hits", labels=("who",)).inc(("x",), 2)
        reg.counter("hits", labels=("who",)).inc(("y",), 0.5)  # float counter
        reg.gauge("depth").track_max(value=7)
        hist = reg.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.0625, 0.5, 3.0):
            hist.observe(value=value)
        parsed = json.loads(canonical_json(reg.snapshot()))
        clone = MetricsRegistry.from_snapshot(parsed)
        assert canonical_json(clone.snapshot()) == canonical_json(reg.snapshot())
        # and merging the parsed form equals merging the live registry
        via_json = MetricsRegistry()
        via_json.merge(parsed)
        via_live = MetricsRegistry()
        via_live.merge(reg)
        assert canonical_json(via_json.snapshot()) == \
            canonical_json(via_live.snapshot())

    def test_from_snapshot_rejects_label_arity_mismatch(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels=("who",)).inc(("x",))
        snap = json.loads(canonical_json(reg.snapshot()))
        snap["instruments"]["hits"]["values"][0][0] = ["x", "extra"]
        with pytest.raises(ValueError):
            MetricsRegistry.from_snapshot(snap)

    def test_from_snapshot_rejects_bucket_count_mismatch(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(0.1,)).observe(value=0.05)
        snap = json.loads(canonical_json(reg.snapshot()))
        snap["instruments"]["lat"]["values"][0][1]["counts"].append(9)
        with pytest.raises(ValueError):
            MetricsRegistry.from_snapshot(snap)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("packets_total", labels=("link",))
        b = reg.counter("packets_total", labels=("link",))
        assert a is b

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(TypeError):
            reg.gauge("thing")

    def test_label_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing", labels=("a",))
        with pytest.raises(ValueError):
            reg.counter("thing", labels=("b",))

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.gauge("alpha")
        assert reg.names() == ["alpha", "zeta"]

    def test_clear_zeroes_but_keeps_instruments(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        reg.clear()
        assert reg.get("hits") is c
        assert c.value() == 0

    def test_registry_is_truthy(self):
        assert MetricsRegistry()

    def test_render_text_includes_help_type_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", help="how many", labels=("host",))
        c.inc(("alice",), 3)
        text = reg.render_text()
        assert "# HELP repro_hits_total how many" in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{host="alice"} 3' in text


class TestSnapshot:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("zeta_total", labels=("who",)).inc(("b",))
        reg.counter("zeta_total", labels=("who",)).inc(("a",), 2)
        reg.gauge("alpha_depth").set(value=7)
        reg.histogram("lat", buckets=(0.1,)).observe(value=0.05)
        return reg

    def test_snapshot_shape(self):
        snap = self._populated().snapshot()
        assert snap["namespace"] == "repro"
        assert list(snap["instruments"]) == ["alpha_depth", "lat", "zeta_total"]
        zeta = snap["instruments"]["zeta_total"]
        assert zeta["kind"] == "counter"
        assert zeta["values"] == [[["a"], 2], [["b"], 1]]  # label-sorted

    def test_snapshot_renders_inf_bucket_as_string(self):
        snap = self._populated().snapshot()
        assert snap["instruments"]["lat"]["buckets"] == [0.1, "inf"]
        # Must round-trip through strict JSON (no Infinity literals).
        json.loads(canonical_json(snap))

    def test_snapshot_deterministic_across_insertion_order(self):
        a = self._populated()
        b = MetricsRegistry()
        b.histogram("lat", buckets=(0.1,)).observe(value=0.05)
        b.gauge("alpha_depth").set(value=7)
        b.counter("zeta_total", labels=("who",)).inc(("a",), 2)
        b.counter("zeta_total", labels=("who",)).inc(("b",))
        assert canonical_json(a.snapshot()) == canonical_json(b.snapshot())


class TestNullRecorder:
    def test_falsy_and_no_op(self):
        null = NullRecorder()
        assert not null
        c = null.counter("hits", labels=("a",))
        c.inc(("x",), 10)  # label arity unchecked, nothing stored
        assert c.value(("x",)) == 0
        assert null.names() == []
        assert null.snapshot() == {"namespace": "null", "instruments": {}}
        assert null.render_text() == ""

    def test_all_instruments_are_shared_singleton(self):
        null = NullRecorder()
        assert null.counter("a") is null.gauge("b") is null.histogram("c")


class TestInstallation:
    def test_defaults_to_null_and_none(self):
        assert current_registry() is NULL
        assert active_or_none() is None

    def test_use_registry_scopes_installation(self):
        reg = MetricsRegistry()
        with use_registry(reg) as installed:
            assert installed is reg
            assert current_registry() is reg
            assert active_or_none() is reg
        assert active_or_none() is None

    def test_use_registry_restores_previous(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                assert active_or_none() is inner
            assert active_or_none() is outer

    def test_set_registry_returns_previous(self):
        reg = MetricsRegistry()
        assert set_registry(reg) is None
        try:
            assert set_registry(None) is reg
        finally:
            set_registry(None)
