"""The passive tap's micro-batching must be invisible to every observer.

``SurveillanceSystem.process`` buffers packets and runs the pipeline over
them in arrival-order batches; these tests pin the contract down: batch
size must never change any stored record or counter, partially filled
buffers must drain on any query (including reads through the metrics
registry's flush hooks), and the byte-accounting properties must always
reflect every packet the tap was handed.
"""

from repro.netsim.middlebox import TapContext
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.packets import ACK, IPPacket, PSH, SYN, TCPSegment, UDPDatagram
from repro.surveillance import SurveillanceSystem, TrafficClass

HTTP_REQUEST = b"GET / HTTP/1.1\r\nHost: twitter.com\r\nUser-Agent: t\r\n\r\n"


def _tcp(src, dst, sport, dport, seq, flags, payload=b""):
    return IPPacket(
        src=src, dst=dst,
        payload=TCPSegment(sport=sport, dport=dport, seq=seq,
                           flags=flags, payload=payload),
    )


def build_trace():
    """A deterministic mixed trace: one interest-alert HTTP flow (split
    across segments so reassembly matters), p2p noise, DNS, filler."""
    packets = []
    now = 0.0

    def emit(packet):
        nonlocal now
        packets.append((packet, now))
        now += 0.01

    # HTTP flow from HOME_NET to a censored host: full handshake (the
    # interest rules require flow:established), then the request split
    # into small segments so reassembly matters.
    client, server = "10.1.0.5", "93.184.216.34"
    emit(_tcp(client, server, 43000, 80, 100, SYN))
    emit(_tcp(server, client, 80, 43000, 500, SYN | ACK))
    emit(_tcp(client, server, 43000, 80, 101, ACK))
    seq = 101
    for start in range(0, len(HTTP_REQUEST), 7):
        chunk = HTTP_REQUEST[start:start + 7]
        emit(_tcp(client, server, 43000, 80, seq, PSH | ACK, chunk))
        seq += len(chunk)

    # Interleaved p2p traffic (classified by port, discarded by MVR).
    for i in range(6):
        emit(_tcp("10.1.0.7", "203.0.113.9", 51000 + i, 6881, 5,
                  PSH | ACK, b"p2p-chunk-%d" % i))

    # DNS queries and filler UDP.
    for i in range(4):
        emit(IPPacket(src="10.1.0.5", dst="8.8.8.8",
                      payload=UDPDatagram(sport=52000 + i, dport=53,
                                          payload=b"\x00" * 12)))
    for i in range(5):
        emit(IPPacket(src="10.1.0.8", dst="198.51.100.2",
                      payload=UDPDatagram(sport=53000, dport=9999,
                                          payload=b"filler")))
    return packets


def _feed(surv, trace):
    for packet, when in trace:
        assert surv.process(packet, TapContext(None, None, when)).name == "PASS"


def _fingerprint(surv):
    """Everything observable: counters, retention records, alert stream."""
    return {
        "summary": surv.summary(),
        "alerts": [(s.time, s.alert.sid, s.alert.src) for s in surv.store.alerts],
        "engine_alerts": [(a.time, a.sid) for a in surv.engine.alerts],
        "discarded": dict(surv.discarded_by_class),
        "retained": dict(surv.retained_by_class),
        "content": [(r.time, r.src, r.size) for r in surv.store.content],
    }


class TestBatchInvariance:
    def test_batch_size_does_not_change_results(self):
        trace = build_trace()
        fingerprints = []
        for batch_size in (1, 4, 32, 1000):
            surv = SurveillanceSystem()
            surv.batch_size = batch_size
            _feed(surv, trace)
            fingerprints.append(_fingerprint(surv))
        assert fingerprints[0]["engine_alerts"], "trace must fire rules"
        for other in fingerprints[1:]:
            assert other == fingerprints[0]

    def test_replay_preserves_arrival_order(self):
        surv = SurveillanceSystem()
        surv.batch_size = 1000  # everything drains in one flush
        _feed(surv, build_trace())
        times = [record.time for record in surv.store.content]
        assert times == sorted(times)


class TestPartialBufferDraining:
    def test_query_flushes_pending_packets(self):
        surv = SurveillanceSystem()  # batch_size 32 > trace below
        trace = build_trace()[:5]
        _feed(surv, trace)
        assert surv._batch, "packets should still be buffered"
        assert surv.store.bytes_seen == 0  # pipeline has not run yet
        summary = surv.summary()  # any query drains the buffer
        assert not surv._batch
        assert summary["packets_seen"] == 5
        assert summary["bytes_seen"] > 0

    def test_accounting_properties_flush(self):
        surv = SurveillanceSystem()
        _feed(surv, [( _tcp("10.0.0.7", "203.0.113.9", 51000, 6881, 5,
                            PSH | ACK, b"p2p"), 0.0)])
        assert surv._batch
        assert surv.discarded_by_class[TrafficClass.P2P] > 0
        assert surv.bytes_discarded > 0
        assert not surv._batch

    def test_registry_read_drains_buffer(self):
        """The metrics registry's flush hooks make mvr_* counters exact
        even when a batch boundary has not been reached."""
        registry = MetricsRegistry()
        with use_registry(registry):
            surv = SurveillanceSystem()
            trace = build_trace()[:7]
            _feed(surv, trace)
            assert surv._batch
            counter = registry.get("mvr_packets_ingested_total")
            assert counter is not None and counter.total() == 7
            assert not surv._batch

    def test_registry_snapshot_drains_buffer(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            surv = SurveillanceSystem()
            _feed(surv, build_trace()[:3])
            assert surv._batch
            snapshot = registry.snapshot()
            assert not surv._batch
            values = snapshot["instruments"]["mvr_packets_ingested_total"]["values"]
            assert sum(value for _labels, value in values) == 3
