"""Integration tests for the composite surveillance system."""

import pytest

from repro.netsim import WebServer, build_censored_as, http_get
from repro.surveillance import (
    AttributionEngine,
    SurveillanceSystem,
    TrafficClass,
    classify_packet,
)
from repro.packets import IPPacket, PSH, ACK, SYN, TCPSegment, UDPDatagram
from repro.rules import RuleEngine, DEFAULT_VARIABLES, mvr_detection_ruleset_text


@pytest.fixture
def world():
    topo = build_censored_as(seed=4, population_size=5)
    surv = SurveillanceSystem(attribution=AttributionEngine.from_network(topo.network))
    topo.border_router.add_tap(surv)
    WebServer(topo.blocked_web)
    WebServer(topo.control_web)
    return topo, surv


class TestClassification:
    def test_web_by_port(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=TCPSegment(sport=40000, dport=80, flags=SYN))
        assert classify_packet(packet, []) == TrafficClass.WEB

    def test_dns_by_port(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=UDPDatagram(sport=40000, dport=53))
        assert classify_packet(packet, []) == TrafficClass.DNS

    def test_mail_by_port(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=TCPSegment(sport=40000, dport=25, flags=SYN))
        assert classify_packet(packet, []) == TrafficClass.MAIL

    def test_alert_classtype_dominates_ports(self):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any 80 (msg:"flood"; flags:S; classtype:denial-of-service; sid:1;)'
        )
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=TCPSegment(sport=40000, dport=80, flags=SYN))
        alerts = engine.process(packet, 0)
        assert classify_packet(packet, alerts) == TrafficClass.DDOS

    def test_p2p_by_port_range(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=TCPSegment(sport=40000, dport=6881, flags=SYN))
        assert classify_packet(packet, []) == TrafficClass.P2P


class TestMVRPipeline:
    def test_overt_censored_access_attributed(self, world):
        topo, surv = world
        results = []
        http_get(topo.measurement_client, topo.blocked_web.ip, "twitter.com",
                 callback=results.append)
        topo.run()
        attributed = surv.attributed_alerts_for_user("measurer")
        assert attributed
        assert attributed[0].origin_ip == topo.measurement_client.ip

    def test_innocent_browsing_not_attributed(self, world):
        topo, surv = world
        results = []
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 callback=results.append)
        topo.run()
        assert surv.attributed_alerts_for_user("measurer") == []

    def test_volume_accounting(self, world):
        topo, surv = world
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 callback=lambda r: None)
        topo.run()
        summary = surv.summary()
        assert summary["bytes_seen"] > 0
        assert summary["packets_seen"] > 0
        assert summary["retained_fraction"] <= surv.profile.storage_fraction + 0.01

    def test_p2p_discarded(self, world):
        topo, surv = world
        from repro.traffic import BITTORRENT_HANDSHAKE

        client = topo.population[0]
        server_conns = []
        def acceptor(conn):
            conn.handler = lambda e, d: None
            server_conns.append(conn)
        topo.control_web.stack.tcp_listen(6881, acceptor)
        conn = client.stack.tcp_connect(topo.control_web.ip, 6881, lambda e, d: None)
        topo.run()
        conn.send(BITTORRENT_HANDSHAKE + b"rest-of-handshake")
        topo.run()
        assert surv.discarded_by_class[TrafficClass.P2P] > 0

    def test_bot_suppression(self, world):
        """A source that behaves like a bot has its interest alerts written
        off — the paper's Section 3 mechanism."""
        topo, surv = world
        client = topo.measurement_client
        # First: bot-like scanning burst (trips ET SCAN threshold).
        for i in range(35):
            client.send_raw(IPPacket(
                src=client.ip, dst=topo.control_web.ip,
                payload=TCPSegment(sport=41000 + i, dport=1 + i, seq=5, flags=SYN),
            ))
        topo.run()
        # Then: censored-content access from the same source.
        http_get(client, topo.blocked_web.ip, "twitter.com", callback=lambda r: None)
        topo.run()
        assert surv.raw_alerts_for_user("measurer")  # retained...
        assert surv.attributed_alerts_for_user("measurer") == []  # ...but suppressed

    def test_suppression_window_bounded(self, world):
        topo, surv = world
        surv.bot_suppression_window = 1.0
        client = topo.measurement_client
        for i in range(35):
            client.send_raw(IPPacket(
                src=client.ip, dst=topo.control_web.ip,
                payload=TCPSegment(sport=41000 + i, dport=1 + i, seq=5, flags=SYN),
            ))
        topo.run()
        topo.sim.run_for(100.0)  # long after the bot activity
        http_get(client, topo.blocked_web.ip, "twitter.com", callback=lambda r: None)
        topo.run()
        assert surv.attributed_alerts_for_user("measurer")  # outside the window

    def test_analyst_integration(self, world):
        topo, surv = world
        surv.analyst.escalation_threshold = 1
        http_get(topo.measurement_client, topo.blocked_web.ip, "twitter.com",
                 callback=lambda r: None)
        topo.run()
        opened = surv.run_analyst(topo.sim.now)
        assert [inv.user for inv in opened] == ["measurer"]

    def test_passive_tap_never_drops(self, world):
        topo, surv = world
        results = []
        http_get(topo.measurement_client, topo.blocked_web.ip, "twitter.com",
                 callback=results.append)
        topo.run()
        assert results[0].ok  # no censor installed; surveillance is passive
