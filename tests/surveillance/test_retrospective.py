"""Tests for retrospective metadata queries — the residual exposure.

The stealthy techniques defeat *alert* attribution, but flow metadata is
retained for the metadata window and remains queryable.  These tests pin
down exactly what leaks and what does not.
"""

import pytest

from repro.core import SpamMeasurement, StatelessSpoofedDNSMeasurement, build_environment


class TestUsersContacting:
    def test_spam_method_leaves_flow_metadata(self):
        """Alert-evasive, yes — but the SMTP connect is a flow record."""
        env = build_environment(censored=False, seed=18, population_size=4)
        technique = SpamMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=30.0)
        # No attributed alert (the evasion result)...
        assert env.surveillance.attributed_alerts_for_user("measurer") == []
        # ...but a retrospective metadata query names the measurer.
        users = env.surveillance.users_contacting(
            env.topo.blocked_mail.ip, now=env.sim.now
        )
        assert "measurer" in users

    def test_metadata_window_bounds_the_query(self):
        env = build_environment(censored=False, seed=18, population_size=4)
        technique = SpamMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=30.0)
        # Within the window: visible.
        assert env.surveillance.users_contacting(
            env.topo.blocked_mail.ip, now=env.sim.now
        )
        # After expiry, the store forgets.
        later = env.sim.now + 31 * 86400.0
        env.surveillance.expire(later)
        assert env.surveillance.users_contacting(
            env.topo.blocked_mail.ip, now=later
        ) == []

    def test_spoofed_cover_also_confuses_metadata(self):
        """Spoofed queries plant flow records for the cover hosts too, so
        even the metadata view is diluted."""
        env = build_environment(censored=False, seed=18, population_size=8)
        technique = StatelessSpoofedDNSMeasurement(
            env.ctx, ["twitter.com"], env.cover_ips(5)
        )
        technique.start()
        env.run(duration=30.0)
        users = env.surveillance.users_contacting(
            env.topo.dns_server.ip, now=env.sim.now
        )
        assert "measurer" in users
        cover_users = [user for user in users if user.startswith("user")]
        assert len(cover_users) == 5

    def test_uninvolved_host_not_listed(self):
        env = build_environment(censored=False, seed=18, population_size=4)
        technique = SpamMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=30.0)
        users = env.surveillance.users_contacting(
            env.topo.blocked_mail.ip, now=env.sim.now
        )
        assert "user0" not in users

    def test_custom_window(self):
        env = build_environment(censored=False, seed=18, population_size=4)
        technique = SpamMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=30.0)
        # A tiny window placed long after the traffic sees nothing.
        users = env.surveillance.users_contacting(
            env.topo.blocked_mail.ip, now=env.sim.now + 1000.0, window=10.0
        )
        assert users == []
