"""Unit tests for the TTL traffic normalizer countermeasure."""

import pytest

from repro.core import StatefulMimicryMeasurement, Verdict, build_environment
from repro.netsim import build_censored_as
from repro.packets import ICMPMessage, IPPacket, UDPDatagram
from repro.surveillance import TTLNormalizer


class TestDetection:
    def test_flags_low_ttl(self):
        topo = build_censored_as(seed=9, population_size=2)
        normalizer = TTLNormalizer(floor=8, normalize=False)
        topo.border_router.add_tap(normalizer)
        client = topo.population[0]
        low = IPPacket(src=topo.measurement_server.ip, dst=client.ip, ttl=3,
                       payload=UDPDatagram(sport=80, dport=9000))
        topo.measurement_server.send_ip(low)
        topo.run()
        assert len(normalizer.anomalies) == 1
        assert normalizer.anomalies[0].src == topo.measurement_server.ip
        assert normalizer.flagged_sources() == [topo.measurement_server.ip]
        assert normalizer.packets_normalized == 0  # detect-only mode

    def test_normal_ttl_unflagged(self):
        topo = build_censored_as(seed=9, population_size=2)
        normalizer = TTLNormalizer(floor=8)
        topo.border_router.add_tap(normalizer)
        client = topo.population[0]
        topo.measurement_server.send_ip(
            IPPacket(src=topo.measurement_server.ip, dst=client.ip, ttl=64,
                     payload=UDPDatagram(sport=80, dport=9000))
        )
        topo.run()
        assert normalizer.anomalies == []

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            TTLNormalizer(floor=0)


class TestNormalization:
    def test_rewrite_delivers_ttl_limited_packet(self):
        """Normalization defeats TTL-limiting: the reply now reaches the
        client instead of dying at the internal router."""
        topo = build_censored_as(seed=9, population_size=2)
        normalizer = TTLNormalizer(floor=8, normalize=True)
        topo.border_router.add_tap(normalizer)
        client = topo.population[0]
        delivered = []
        client.stack.add_sniffer(lambda p: delivered.append(p) if p.udp else None)
        dying_ttl = topo.reply_ttl_dying_inside()
        topo.measurement_server.send_ip(
            IPPacket(src=topo.measurement_server.ip, dst=client.ip, ttl=dying_ttl,
                     payload=UDPDatagram(sport=80, dport=9000))
        )
        topo.run()
        assert len(delivered) == 1
        assert normalizer.packets_normalized == 1

    def test_breaks_low_ttl_ping_diagnostics(self):
        topo = build_censored_as(seed=9, population_size=2)
        normalizer = TTLNormalizer(floor=8, normalize=True)
        topo.border_router.add_tap(normalizer)
        client = topo.population[0]
        # A traceroute-style hop-limited echo that should expire inside.
        probe = IPPacket(src=topo.measurement_server.ip, dst=client.ip, ttl=3,
                         payload=ICMPMessage.echo_request(ident=1))
        topo.measurement_server.send_ip(probe)
        topo.run()
        assert normalizer.diagnostics_broken == 1


class TestAgainstStatefulMimicry:
    def _run(self, with_normalizer):
        env = build_environment(censored=False, seed=9, population_size=6)
        if with_normalizer:
            # Normalizer sits where the surveillance system is: the border.
            env.topo.border_router.taps.insert(0, TTLNormalizer(floor=8))
        technique = StatefulMimicryMeasurement(
            env.ctx, env.mimicry_server,
            [b"GET /benign HTTP/1.1\r\n\r\n"],
            cover_ips=env.cover_ips(4),
        )
        technique.start()
        env.run(duration=30.0)
        return technique

    def test_mimicry_clean_without_normalizer(self):
        technique = self._run(with_normalizer=False)
        assert all(r.verdict is Verdict.ACCESSIBLE for r in technique.results)

    def test_normalizer_corrupts_spoofed_flows(self):
        """The countermeasure works: normalized SYN/ACKs reach the spoofed
        clients, whose replay RSTs tear the embryonic connections down
        before the blind ACKs land — every clean flow reads as blocked."""
        technique = self._run(with_normalizer=True)
        assert technique.results
        assert all(r.blocked for r in technique.results)
