"""Unit tests for attribution and analyst triage."""

import math

import pytest

from repro.surveillance import Analyst, AttributionEngine, NSA_PROFILE
from repro.surveillance.storage import StoredAlert


def stored(user, time=0.0):
    return StoredAlert(time=time, alert=None, user=user, origin_ip=None)


class TestSuspectReport:
    def _engine(self):
        return AttributionEngine(lambda ip: {"10.0.0.1": "alice", "10.0.0.2": "bob"}.get(ip))

    def test_user_lookup(self):
        engine = self._engine()
        assert engine.user_of("10.0.0.1") == "alice"
        assert engine.user_of("9.9.9.9") is None

    def test_report_counts(self):
        engine = self._engine()
        report = engine.report([stored("alice"), stored("alice"), stored("bob")])
        assert report.counts == {"alice": 2, "bob": 1}
        assert report.total == 3
        assert report.suspects == ["alice", "bob"]

    def test_confidence(self):
        engine = self._engine()
        report = engine.report([stored("alice"), stored("bob")])
        assert report.confidence("alice") == 0.5
        assert report.confidence("carol") == 0.0

    def test_entropy_single_suspect_zero(self):
        engine = self._engine()
        report = engine.report([stored("alice")] * 5)
        assert report.entropy() == 0.0

    def test_entropy_uniform_is_log2_n(self):
        engine = self._engine()
        alerts = [stored(f"user{i}") for i in range(8)]
        report = engine.report(alerts)
        assert abs(report.entropy() - 3.0) < 1e-9

    def test_empty_report(self):
        report = self._engine().report([])
        assert report.total == 0
        assert report.top_confidence() == 0.0
        assert report.entropy() == 0.0

    def test_unattributed_alerts_ignored(self):
        report = self._engine().report([stored(None), stored("alice")])
        assert report.total == 1


class TestAnalyst:
    def test_escalates_above_threshold(self):
        analyst = Analyst(NSA_PROFILE, escalation_threshold=3)
        alerts = [stored("alice", time=float(i)) for i in range(3)]
        opened = analyst.triage(alerts, now=10.0)
        assert [inv.user for inv in opened] == ["alice"]
        assert analyst.is_under_investigation("alice")

    def test_below_threshold_ignored(self):
        analyst = Analyst(NSA_PROFILE, escalation_threshold=3)
        opened = analyst.triage([stored("alice")] * 2, now=10.0)
        assert opened == []

    def test_old_alerts_outside_window_ignored(self):
        analyst = Analyst(NSA_PROFILE, escalation_threshold=2, window=100.0)
        alerts = [stored("alice", time=0.0), stored("alice", time=1.0)]
        assert analyst.triage(alerts, now=1000.0) == []

    def test_capacity_bound(self):
        analyst = Analyst(NSA_PROFILE, escalation_threshold=1)
        # Distinct alert volumes: user i has i+1 alerts, so the analyst can
        # rank them and spends exactly its capacity on the top of the list.
        alerts = [stored(f"user{i:02d}", time=5.0)
                  for i in range(50) for _ in range(i + 1)]
        opened = analyst.triage(alerts, now=10.0)
        assert len(opened) == NSA_PROFILE.analyst_capacity_per_day
        assert analyst.escalations_denied_capacity > 0
        assert opened[0].user == "user49"  # loudest first

    def test_indiscriminate_tie_group_denied(self):
        """A crowd of equally-suspicious users exceeds what the analyst can
        act on without random policing — nobody is investigated (the
        paper's false-positive-cost argument, and what spoofed cover
        traffic exploits)."""
        analyst = Analyst(NSA_PROFILE, escalation_threshold=1)
        alerts = [stored(f"user{i}", time=5.0) for i in range(50)]
        opened = analyst.triage(alerts, now=10.0)
        assert opened == []
        assert analyst.escalations_denied_capacity == 50

    def test_no_duplicate_investigations(self):
        analyst = Analyst(NSA_PROFILE, escalation_threshold=1)
        alerts = [stored("alice", time=5.0)]
        assert len(analyst.triage(alerts, now=10.0)) == 1
        assert analyst.triage(alerts, now=11.0) == []

    def test_most_alerting_user_prioritized(self):
        analyst = Analyst(NSA_PROFILE, escalation_threshold=1)
        alerts = [stored("quiet", time=5.0)] + [stored("loud", time=5.0)] * 5
        opened = analyst.triage(alerts, now=10.0)
        assert opened[0].user == "loud"

    def test_required_capacity(self):
        analyst = Analyst(NSA_PROFILE, escalation_threshold=2)
        alerts = [stored("a", 1.0), stored("a", 2.0), stored("b", 1.0)]
        assert analyst.required_capacity(alerts, now=10.0) == 1

    def test_investigation_reasons_deduplicated(self):
        from repro.rules.engine import Alert
        from repro.rules.language import parse_rule

        rule = parse_rule('alert tcp any any -> any any (msg:"m"; sid:1;)')
        alert = Alert(time=0, sid=1, msg="same reason", action="alert", classtype="",
                      priority=3, src="1.1.1.1", dst="2.2.2.2", sport=1, dport=2,
                      rule=rule, packet=None)
        alerts = [StoredAlert(time=5.0, alert=alert, user="alice", origin_ip=None)
                  for _ in range(4)]
        analyst = Analyst(NSA_PROFILE, escalation_threshold=2)
        opened = analyst.triage(alerts, now=10.0)
        assert opened[0].reasons == ["same reason"]
