"""Unit tests for retention storage."""

import pytest

from repro.packets import FiveTuple, PROTO_TCP
from repro.surveillance import CAMPUS_PROFILE, NSA_PROFILE, RetentionStore, SurveillanceProfile
from repro.surveillance.storage import ContentRecord, StoredAlert


def record(time=0.0, size=100, summary="pkt"):
    return ContentRecord(time=time, src="1.1.1.1", dst="2.2.2.2", size=size,
                         summary=summary)


class TestProfiles:
    def test_nsa_constants_match_paper(self):
        assert NSA_PROFILE.storage_fraction == 0.075
        assert NSA_PROFILE.content_retention == 3 * 86400
        assert NSA_PROFILE.metadata_retention == 30 * 86400

    def test_campus_constants_match_paper(self):
        assert not CAMPUS_PROFILE.captures_content
        assert CAMPUS_PROFILE.metadata_retention == 36 * 3600
        assert CAMPUS_PROFILE.alert_retention == 365 * 86400

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            SurveillanceProfile(name="bad", storage_fraction=0.0,
                                content_retention=1, metadata_retention=1,
                                alert_retention=1)


class TestBudget:
    def test_budget_enforced_fifo(self):
        store = RetentionStore(NSA_PROFILE)
        store.observe_volume(10_000)  # budget = 750 bytes
        for index in range(10):
            store.store_content(record(time=index, size=100, summary=f"p{index}"))
        assert store.bytes_retained <= 750
        # Oldest evicted first.
        assert not store.content_mentioning("p0")
        assert store.content_mentioning("p9")
        assert store.bytes_evicted_for_budget > 0

    def test_retained_fraction_bounded(self):
        store = RetentionStore(NSA_PROFILE)
        for index in range(100):
            store.observe_volume(100)
            store.store_content(record(time=index, size=100))
        assert store.retained_fraction() <= NSA_PROFILE.storage_fraction + 0.01

    def test_campus_stores_no_content(self):
        store = RetentionStore(CAMPUS_PROFILE)
        store.observe_volume(1000)
        store.store_content(record())
        assert store.bytes_retained == 0
        assert len(store.content) == 0


class TestExpiry:
    def test_content_expires_after_window(self):
        store = RetentionStore(NSA_PROFILE)
        store.observe_volume(10**9)
        store.store_content(record(time=0.0))
        store.expire(now=4 * 86400.0)
        assert len(store.content) == 0
        assert store.bytes_expired == 100

    def test_content_kept_within_window(self):
        store = RetentionStore(NSA_PROFILE)
        store.observe_volume(10**9)
        store.store_content(record(time=0.0))
        store.expire(now=2 * 86400.0)
        assert len(store.content) == 1

    def test_flow_metadata_expires(self):
        store = RetentionStore(NSA_PROFILE)
        key = FiveTuple("1.1.1.1", 1, "2.2.2.2", 2, PROTO_TCP)
        store.store_flow(key, now=0.0, size=100)
        store.expire(now=31 * 86400.0)
        assert store.flows == {}

    def test_alerts_expire_after_a_year(self):
        store = RetentionStore(NSA_PROFILE)
        store.store_alert(StoredAlert(time=0.0, alert=None, user="u", origin_ip=None))
        store.expire(now=366 * 86400.0)
        assert store.alerts == []


class TestFlowRecords:
    def test_flow_accumulates(self):
        store = RetentionStore(NSA_PROFILE)
        key = FiveTuple("1.1.1.1", 1, "2.2.2.2", 2, PROTO_TCP)
        store.store_flow(key, now=0.0, size=100)
        store.store_flow(key, now=1.0, size=50)
        flow = store.flows[key]
        assert flow.packets == 2
        assert flow.bytes == 150
        assert flow.last_seen == 1.0

    def test_flows_touching(self):
        store = RetentionStore(NSA_PROFILE)
        store.store_flow(FiveTuple("1.1.1.1", 1, "2.2.2.2", 2, PROTO_TCP), 0.0, 10)
        store.store_flow(FiveTuple("3.3.3.3", 1, "4.4.4.4", 2, PROTO_TCP), 0.0, 10)
        assert len(store.flows_touching("1.1.1.1")) == 1
        assert len(store.flows_touching("9.9.9.9")) == 0


class TestAlertQueries:
    def test_alerts_for_user(self):
        store = RetentionStore(NSA_PROFILE)
        store.store_alert(StoredAlert(time=0.0, alert=None, user="alice", origin_ip=None))
        store.store_alert(StoredAlert(time=0.0, alert=None, user="bob", origin_ip=None))
        assert len(store.alerts_for_user("alice")) == 1
