"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.evaluation import build_environment
from repro.netsim import build_censored_as, build_three_node


@pytest.fixture
def rng():
    return random.Random(42)


@pytest.fixture
def three_node():
    return build_three_node(seed=1)


@pytest.fixture
def censored_as():
    return build_censored_as(seed=1, population_size=8)


@pytest.fixture
def env_censored():
    return build_environment(censored=True, seed=1, population_size=8)


@pytest.fixture
def env_open():
    return build_environment(censored=False, seed=1, population_size=8)
