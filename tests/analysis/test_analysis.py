"""Unit tests for the analysis package."""

import math
import random

import pytest

from repro.analysis import (
    ConfusionCounts,
    EmpiricalCDF,
    SCHOMP_2013,
    SYRIA_CENSORED_USER_FRACTION,
    SyriaLogGenerator,
    accuracy_table_row,
    analyze_logs,
    ascii_cdf,
    load_comparison,
    render_table,
    score_results,
    spoofed_query_load,
)
from repro.core import MeasurementResult, Verdict


class TestConfusion:
    def test_counts_and_metrics(self):
        counts = ConfusionCounts(true_positive=8, false_negative=2,
                                 true_negative=9, false_positive=1)
        assert counts.total == 20
        assert counts.accuracy == pytest.approx(0.85)
        assert counts.precision == pytest.approx(8 / 9)
        assert counts.recall == pytest.approx(0.8)
        assert 0 < counts.f1 < 1

    def test_empty_counts(self):
        counts = ConfusionCounts()
        assert counts.accuracy == 0.0
        assert counts.precision == 0.0
        assert counts.f1 == 0.0

    def test_score_results(self):
        results = [
            MeasurementResult("t", "twitter.com", Verdict.DNS_POISONED),
            MeasurementResult("t", "example.org", Verdict.ACCESSIBLE),
            MeasurementResult("t", "youtube.com", Verdict.ACCESSIBLE),  # miss
            MeasurementResult("t", "weather.gov", Verdict.BLOCKED_RST),  # FP
        ]
        truth = {"twitter.com": True, "youtube.com": True,
                 "example.org": False, "weather.gov": False}
        counts = score_results(results, truth)
        assert counts.true_positive == 1
        assert counts.false_negative == 1
        assert counts.true_negative == 1
        assert counts.false_positive == 1

    def test_substring_target_matching(self):
        results = [MeasurementResult("t", "203.0.113.10:80", Verdict.BLOCKED_TIMEOUT)]
        counts = score_results(results, {"203.0.113.10": True})
        assert counts.true_positive == 1

    def test_unknown_targets_skipped(self):
        results = [MeasurementResult("t", "mystery.com", Verdict.ACCESSIBLE)]
        assert score_results(results, {"twitter.com": True}).total == 0

    def test_inconclusive_counted(self):
        results = [MeasurementResult("t", "twitter.com", Verdict.INCONCLUSIVE)]
        counts = score_results(results, {"twitter.com": True})
        assert counts.inconclusive == 1

    def test_table_row(self):
        row = accuracy_table_row("spam", ConfusionCounts(true_positive=1, true_negative=1))
        assert "spam" in row and "acc=1.000" in row


class TestCDF:
    def test_at_and_quantile(self):
        cdf = EmpiricalCDF([1, 2, 3, 4, 5])
        assert cdf.at(3) == 0.6
        assert cdf.at(0) == 0.0
        assert cdf.at(10) == 1.0
        assert cdf.median == 3
        assert cdf.min == 1 and cdf.max == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF([1, 2, 3])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_points_monotonic(self):
        cdf = EmpiricalCDF([5, 1, 9, 3, 7])
        points = cdf.points(steps=20)
        fractions = [fraction for _value, fraction in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_single_value(self):
        cdf = EmpiricalCDF([7.0])
        assert cdf.points() == [(7.0, 1.0)]

    def test_ascii_render(self):
        cdf = EmpiricalCDF([float(v) for v in range(70, 100)])
        art = ascii_cdf(cdf, title="spam scores")
        assert "spam scores" in art
        assert "#" in art


class TestSyria:
    def test_calibration_hits_target(self):
        gen = SyriaLogGenerator(population=30000, rng=random.Random(5))
        logs = gen.generate()
        analysis = analyze_logs(logs, 30000)
        assert abs(analysis.censored_user_fraction - SYRIA_CENSORED_USER_FRACTION) < 0.004

    def test_pursuit_burden_infeasible(self):
        gen = SyriaLogGenerator(population=50000, rng=random.Random(5))
        analysis = analyze_logs(gen.generate(), 50000)
        # ~785 users flagged over 2 days vs. 10 investigations/day.
        assert analysis.pursuit_burden(analyst_capacity_per_day=10) > 10

    def test_censored_requests_use_censored_domains(self):
        gen = SyriaLogGenerator(population=2000, rng=random.Random(5))
        logs = gen.generate(censored_domains=["blocked.example"],
                            open_domains=["open.example"])
        for entry in logs:
            if entry.censored:
                assert entry.domain == "blocked.example"
            else:
                assert entry.domain == "open.example"

    def test_entries_sorted_by_time(self):
        gen = SyriaLogGenerator(population=500, rng=random.Random(5))
        logs = gen.generate()
        times = [entry.time for entry in logs]
        assert times == sorted(times)

    def test_population_must_be_positive(self):
        with pytest.raises(ValueError):
            SyriaLogGenerator(population=0, rng=random.Random(1))

    def test_zero_capacity_burden_infinite(self):
        gen = SyriaLogGenerator(population=1000, rng=random.Random(5))
        analysis = analyze_logs(gen.generate(), 1000)
        assert analysis.pursuit_burden(0) == math.inf


class TestEthics:
    def test_slash16_is_65k(self):
        assert spoofed_query_load(16) == 65536

    def test_slash24(self):
        assert spoofed_query_load(24) == 256

    def test_queries_per_ip_multiplier(self):
        assert spoofed_query_load(24, queries_per_ip=3) == 768

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            spoofed_query_load(40)

    def test_comparison_matches_paper_scale(self):
        comparison = load_comparison()
        assert comparison.spoofed_queries == 65536
        # 65k queries are a tiny fraction of the 32 M open-forwarder load.
        assert comparison.queries_per_forwarder_equivalent < 0.01
        assert comparison.fraction_of_recursive_population == pytest.approx(65536 / 60000)

    def test_schomp_constants(self):
        assert SCHOMP_2013.open_forwarders == 32_000_000
        assert SCHOMP_2013.open_recursives_low == 60_000


class TestRenderTable:
    def test_alignment_and_title(self):
        table = render_table(["name", "value"], [["a", 1.5], ["bb", 20]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.500" in table

    def test_empty_rows(self):
        table = render_table(["x"], [])
        assert "x" in table
