"""Tests for the statistics helpers."""

import math

import pytest

from hypothesis import given, strategies as st

from repro.analysis.stats import Summary, summarize_samples, wilson_interval


class TestSummary:
    def test_basic_statistics(self):
        summary = summarize_samples([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.stddev == pytest.approx(math.sqrt(5 / 3))

    def test_single_sample(self):
        summary = summarize_samples([7.0])
        assert summary.stddev == 0.0
        assert summary.ci95_halfwidth() == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_samples([])

    def test_str_is_readable(self):
        text = str(summarize_samples([1.0, 2.0, 3.0]))
        assert "mean=2" in text and "n=3" in text

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_mean_within_range(self, values):
        summary = summarize_samples(values)
        epsilon = 1e-6 * max(1.0, abs(summary.mean))  # float summation slack
        assert summary.minimum - epsilon <= summary.mean <= summary.maximum + epsilon


class TestWilson:
    def test_zero_successes_nonzero_upper(self):
        low, high = wilson_interval(0, 6)
        assert low == 0.0
        assert 0.3 < high < 0.5  # 0/6 still admits up to ~39 %

    def test_all_successes(self):
        low, high = wilson_interval(6, 6)
        assert high == 1.0
        assert 0.5 < low < 0.7

    def test_half(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert high - low < 0.2

    def test_interval_shrinks_with_n(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    @given(trials=st.integers(1, 500), data=st.data())
    def test_interval_contains_point_estimate(self, trials, data):
        successes = data.draw(st.integers(0, trials))
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0
