"""Tests for JSON result export."""

import json

import pytest

from repro.analysis.export import (
    campaign_document,
    records_from_jsonl,
    result_to_record,
    results_to_jsonl,
    risk_to_record,
)
from repro.core import MeasurementResult, RiskAssessment, Verdict


def result(target="twitter.com", verdict=Verdict.DNS_POISONED):
    return MeasurementResult(
        technique="spam",
        target=target,
        verdict=verdict,
        time=1.5,
        detail="poisoned",
        evidence={"stage": "mx", "addresses": ["8.7.198.45"], "raw": b"\x01\x02"},
        samples=1,
    )


class TestResultRecord:
    def test_round_trips_through_json(self):
        record = result_to_record(result())
        parsed = json.loads(json.dumps(record))
        assert parsed["technique"] == "spam"
        assert parsed["verdict"] == "dns_poisoned"
        assert parsed["blocked"] is True
        assert parsed["evidence"]["stage"] == "mx"

    def test_bytes_evidence_encoded(self):
        record = result_to_record(result())
        assert record["evidence"]["raw"] == "\x01\x02"

    def test_verdict_values_stable(self):
        for verdict in Verdict:
            record = result_to_record(result(verdict=verdict))
            assert record["verdict"] == verdict.value


class TestJsonl:
    def test_round_trip(self):
        results = [result(), result(target="example.org", verdict=Verdict.ACCESSIBLE)]
        text = results_to_jsonl(results)
        records = records_from_jsonl(text)
        assert len(records) == 2
        assert records[1]["blocked"] is False

    def test_blank_lines_skipped(self):
        text = results_to_jsonl([result()]) + "\n\n"
        assert len(records_from_jsonl(text)) == 1

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            records_from_jsonl('{"schema": "other-1"}')


class TestRiskRecord:
    def test_fields(self):
        risk = RiskAssessment("spam", 0, 0, None, 0.0, 0.0, False)
        record = risk_to_record(risk)
        assert record["evaded"] is True
        assert record["risk_score"] == 0.0
        json.dumps(record)  # must be JSON-safe


class TestCampaignDocument:
    def test_document_structure(self):
        doc = campaign_document(
            {"spam": [result()], "overt": [result(verdict=Verdict.ACCESSIBLE)]},
            risks=[RiskAssessment("spam", 0, 0, None, 0.0, 0.0, False)],
            metadata={"seed": 7},
        )
        parsed = json.loads(doc)
        assert parsed["kind"] == "campaign"
        assert parsed["metadata"]["seed"] == 7
        assert parsed["summary"]["spam"] == {"dns_poisoned": 1}
        assert len(parsed["risks"]) == 1

    def test_integrates_with_real_campaign(self):
        from repro.core import SpamMeasurement, build_environment

        env = build_environment(censored=True, seed=16, population_size=3)
        technique = SpamMeasurement(env.ctx, ["twitter.com", "example.org"])
        technique.start()
        env.run(duration=30.0)
        doc = campaign_document({"spam": technique.results})
        parsed = json.loads(doc)
        assert parsed["summary"]["spam"]["dns_poisoned"] == 1
        assert parsed["summary"]["spam"]["accessible"] == 1
