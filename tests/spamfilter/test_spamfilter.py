"""Unit tests for the spam filter: features, scorer, corpora."""

import random

import pytest

from repro.packets import EmailMessage
from repro.spamfilter import (
    SPAM_THRESHOLD,
    SpamScorer,
    extract_features,
    generate_ham,
    generate_spam,
    measurement_spam_email,
)


@pytest.fixture
def rng():
    return random.Random(11)


@pytest.fixture
def scorer():
    return SpamScorer()


class TestFeatures:
    def test_phrase_hits(self):
        message = EmailMessage("a@b", "c@d", "free prize", "click here to act now")
        features = extract_features(message)
        assert features.phrase_hits >= 3

    def test_caps_ratio(self):
        shouty = extract_features(EmailMessage("a@b", "c@d", "", "HELLO WORLD"))
        calm = extract_features(EmailMessage("a@b", "c@d", "", "hello world"))
        assert shouty.caps_ratio == 1.0
        assert calm.caps_ratio == 0.0

    def test_caps_ratio_empty_body(self):
        features = extract_features(EmailMessage("a@b", "c@d", "", "123 456"))
        assert features.caps_ratio == 0.0

    def test_url_count(self):
        message = EmailMessage("a@b", "c@d", "", "see http://x.com and www.y.com")
        assert extract_features(message).urls == 2

    def test_money_mentions(self):
        message = EmailMessage("a@b", "c@d", "", "send $1,000,000 or 500 dollars")
        assert extract_features(message).money_mentions == 2

    def test_domain_mismatch(self):
        message = EmailMessage("a@real.com", "c@d", "", "",
                               extra_headers={"Reply-To": "x@fake.com"})
        assert extract_features(message).domain_mismatch

    def test_no_mismatch_without_reply_to(self):
        assert not extract_features(EmailMessage("a@real.com", "c@d", "", "")).domain_mismatch

    def test_subject_shouting(self):
        assert extract_features(EmailMessage("a@b", "c@d", "BUY NOW", "")).subject_shouting
        assert not extract_features(EmailMessage("a@b", "c@d", "Buy now", "")).subject_shouting

    def test_exclamations(self):
        assert extract_features(EmailMessage("a@b", "c@d", "hi!!", "wow!")).exclamations == 3

    def test_as_dict_keys(self):
        features = extract_features(EmailMessage("a@b", "c@d", "s", "b"))
        assert set(features.as_dict()) >= {"phrase_hits", "caps_ratio", "urls"}


class TestScorer:
    def test_score_range(self, scorer, rng):
        for message in generate_spam(rng, 20) + generate_ham(rng, 20):
            assert 0.0 <= scorer.score(message) <= 100.0

    def test_spam_scores_high(self, scorer, rng):
        scores = [scorer.score(m) for m in generate_spam(rng, 50)]
        assert min(scores) >= 70.0

    def test_ham_scores_low(self, scorer, rng):
        scores = [scorer.score(m) for m in generate_ham(rng, 50)]
        assert max(scores) < 30.0

    def test_is_spam_threshold(self, scorer, rng):
        spam = generate_spam(rng, 10)
        ham = generate_ham(rng, 10)
        assert all(scorer.is_spam(m) for m in spam)
        assert not any(scorer.is_spam(m) for m in ham)

    def test_deterministic(self, scorer, rng):
        message = generate_spam(rng, 1)[0]
        assert scorer.score(message) == scorer.score(message)

    def test_custom_weights(self, rng):
        aggressive = SpamScorer(weights={**SpamScorer().weights, "bias": 5.0})
        message = generate_ham(rng, 1)[0]
        assert aggressive.score(message) > SpamScorer().score(message)


class TestCorpora:
    def test_generate_counts(self, rng):
        assert len(generate_spam(rng, 7)) == 7
        assert len(generate_ham(rng, 3)) == 3

    def test_spam_recipient_override(self, rng):
        message = generate_spam(rng, 1, recipient="t@target.com")[0]
        assert message.recipient == "t@target.com"

    def test_measurement_email_targets_domain(self, rng):
        message = measurement_spam_email(rng, "twitter.com")
        assert message.recipient == "info@twitter.com"

    def test_measurement_email_classifies_as_spam(self, scorer, rng):
        # The paper's Figure 2 criterion: cloaked measurements score as spam.
        scores = [scorer.score(measurement_spam_email(rng, "twitter.com"))
                  for _ in range(100)]
        assert all(score >= SPAM_THRESHOLD for score in scores)
        assert sum(scores) / len(scores) >= 85.0

    def test_custom_mailbox(self, rng):
        message = measurement_spam_email(rng, "x.com", mailbox="postmaster")
        assert message.recipient == "postmaster@x.com"
