"""Unit tests for TTL estimation and reply planning."""

import pytest

from repro.netsim import build_censored_as
from repro.spoofing import TTLEstimator, plan_reply_ttl


class TestPlanReplyTTL:
    def test_dies_one_hop_short(self):
        assert plan_reply_ttl(hops_to_client=3) == 2

    def test_dies_two_hops_short(self):
        assert plan_reply_ttl(hops_to_client=5, die_short_by=2) == 3

    def test_zero_die_short_rejected(self):
        with pytest.raises(ValueError):
            plan_reply_ttl(hops_to_client=3, die_short_by=0)

    def test_path_too_short_rejected(self):
        with pytest.raises(ValueError):
            plan_reply_ttl(hops_to_client=1, die_short_by=1)


class TestTTLEstimator:
    def test_estimates_router_hops(self):
        topo = build_censored_as(population_size=2)
        estimator = TTLEstimator(topo.measurement_server)
        estimates = []
        estimator.estimate(topo.population[0].ip, estimates.append)
        topo.run()
        assert estimates[0].ok
        # server -> transit -> border -> internal -> client: 3 router hops.
        assert estimates[0].hops == 3

    def test_planned_ttl_round_trip(self):
        """Estimate hops, plan a TTL, verify the reply dies inside the AS."""
        from repro.packets import IPPacket, UDPDatagram

        topo = build_censored_as(population_size=2)
        client = topo.population[0]
        estimator = TTLEstimator(topo.measurement_server)
        estimates = []
        estimator.estimate(client.ip, estimates.append)
        topo.run()
        ttl = plan_reply_ttl(estimates[0].hops)
        delivered = []
        client.stack.add_sniffer(lambda p: delivered.append(p) if p.udp else None)
        topo.measurement_server.send_ip(
            IPPacket(src=topo.measurement_server.ip, dst=client.ip, ttl=ttl,
                     payload=UDPDatagram(sport=80, dport=7000))
        )
        topo.run()
        assert delivered == []

    def test_timeout_on_unreachable(self):
        topo = build_censored_as(population_size=1)
        estimator = TTLEstimator(topo.measurement_server, timeout=0.5)
        estimates = []
        estimator.estimate("203.0.113.99", estimates.append)
        topo.run()
        assert not estimates[0].ok

    def test_error_offset_applied(self):
        topo = build_censored_as(population_size=1)
        estimator = TTLEstimator(topo.measurement_server, error=2)
        estimates = []
        estimator.estimate(topo.population[0].ip, estimates.append)
        topo.run()
        assert estimates[0].hops == 5  # true 3 + injected error 2
