"""Unit tests for TTL estimation and reply planning."""

import pytest

from repro.netsim import build_censored_as
from repro.spoofing import TTLEstimator, plan_reply_ttl


class TestPlanReplyTTL:
    def test_dies_one_hop_short(self):
        assert plan_reply_ttl(hops_to_client=3) == 2

    def test_dies_two_hops_short(self):
        assert plan_reply_ttl(hops_to_client=5, die_short_by=2) == 3

    def test_zero_die_short_rejected(self):
        with pytest.raises(ValueError):
            plan_reply_ttl(hops_to_client=3, die_short_by=0)

    def test_path_too_short_rejected(self):
        with pytest.raises(ValueError):
            plan_reply_ttl(hops_to_client=1, die_short_by=1)


class TestTTLEstimator:
    def test_estimates_router_hops(self):
        topo = build_censored_as(population_size=2)
        estimator = TTLEstimator(topo.measurement_server)
        estimates = []
        estimator.estimate(topo.population[0].ip, estimates.append)
        topo.run()
        assert estimates[0].ok
        # server -> transit -> border -> internal -> client: 3 router hops.
        assert estimates[0].hops == 3

    def test_planned_ttl_round_trip(self):
        """Estimate hops, plan a TTL, verify the reply dies inside the AS."""
        from repro.packets import IPPacket, UDPDatagram

        topo = build_censored_as(population_size=2)
        client = topo.population[0]
        estimator = TTLEstimator(topo.measurement_server)
        estimates = []
        estimator.estimate(client.ip, estimates.append)
        topo.run()
        ttl = plan_reply_ttl(estimates[0].hops)
        delivered = []
        client.stack.add_sniffer(lambda p: delivered.append(p) if p.udp else None)
        topo.measurement_server.send_ip(
            IPPacket(src=topo.measurement_server.ip, dst=client.ip, ttl=ttl,
                     payload=UDPDatagram(sport=80, dport=7000))
        )
        topo.run()
        assert delivered == []

    def test_timeout_on_unreachable(self):
        topo = build_censored_as(population_size=1)
        estimator = TTLEstimator(topo.measurement_server, timeout=0.5)
        estimates = []
        estimator.estimate("203.0.113.99", estimates.append)
        topo.run()
        assert not estimates[0].ok

    def test_error_offset_applied(self):
        topo = build_censored_as(population_size=1)
        estimator = TTLEstimator(topo.measurement_server, error=2)
        estimates = []
        estimator.estimate(topo.population[0].ip, estimates.append)
        topo.run()
        assert estimates[0].hops == 5  # true 3 + injected error 2


class TestIdentHandling:
    """Regressions for the 16-bit ident field and reply attribution."""

    def _estimator(self, population_size=2):
        topo = build_censored_as(population_size=population_size)
        return topo, TTLEstimator(topo.measurement_server)

    def test_ident_wraps_at_16_bits(self):
        from repro.spoofing.ttl import MAX_IDENT

        topo, estimator = self._estimator()
        estimator._next_ident = MAX_IDENT  # as after ~65k probes
        estimates = []
        estimator.estimate(topo.population[0].ip, estimates.append)
        estimator.estimate(topo.population[1].ip, estimates.append)
        # Second probe wrapped into the 16-bit field instead of 0x10000.
        assert all(1 <= ident <= MAX_IDENT for ident in estimator._pending)
        topo.run()
        assert all(e.ok for e in estimates)

    def test_wrap_skips_idents_still_pending(self):
        from repro.spoofing.ttl import MAX_IDENT

        topo, estimator = self._estimator()
        estimator.estimate("203.0.113.99", lambda e: None)  # stays pending
        pending_ident = next(iter(estimator._pending))
        assert pending_ident == 1
        estimator._next_ident = MAX_IDENT
        estimator.estimate("203.0.113.98", lambda e: None)  # takes 0xFFFF
        estimator.estimate("203.0.113.97", lambda e: None)  # wraps, skips 1
        assert sorted(estimator._pending) == [1, 2, MAX_IDENT]

    def test_reply_to_other_host_ignored(self):
        from repro.packets import ICMP_ECHO_REPLY, ICMPMessage, IPPacket

        topo, estimator = self._estimator()
        estimates = []
        estimator.estimate(topo.population[0].ip, estimates.append)
        ident = next(iter(estimator._pending))
        # An echo reply sniffed in transit: matching ident, but addressed
        # to someone else.  Must not resolve our probe.
        transit = IPPacket(
            src=topo.population[0].ip, dst="203.0.113.77", ttl=61,
            payload=ICMPMessage(icmp_type=ICMP_ECHO_REPLY, ident=ident),
        )
        estimator._sniff(transit)
        assert ident in estimator._pending
        assert estimates == []

    def test_estimate_attributed_to_probed_target_not_packet_src(self):
        from repro.packets import ICMP_ECHO_REPLY, ICMPMessage, IPPacket

        topo, estimator = self._estimator()
        target = topo.population[0].ip
        estimates = []
        estimator.estimate(target, estimates.append)
        ident = next(iter(estimator._pending))
        spoofed = IPPacket(
            src="198.51.100.66",  # spoofable, not who we probed
            dst=topo.measurement_server.ip, ttl=61,
            payload=ICMPMessage(icmp_type=ICMP_ECHO_REPLY, ident=ident),
        )
        estimator._sniff(spoofed)
        assert estimates and estimates[0].target == target

    def test_timeout_timer_cancelled_when_reply_arrives(self):
        """Answered probes must not leave dead timers on the sim heap."""
        topo, estimator = self._estimator()
        sim = topo.sim
        estimates = []
        estimator.estimate(topo.population[0].ip, estimates.append)
        sim.run(until=sim.now + 1.0)  # reply arrives well before timeout=2.0
        assert estimates and estimates[0].ok
        assert sim.stats()["timers_cancelled"] >= 1
        assert sim.pending == 0

    def test_all_idents_pending_raises(self):
        import pytest as _pytest

        from repro.spoofing.ttl import MAX_IDENT, _PendingProbe

        topo, estimator = self._estimator()
        estimator._pending = {
            ident: _PendingProbe("10.0.0.1", lambda e: None, None)
            for ident in range(1, MAX_IDENT + 1)
        }
        with _pytest.raises(RuntimeError, match="idents"):
            estimator.estimate("203.0.113.99", lambda e: None)
