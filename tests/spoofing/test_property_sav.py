"""Property-based tests for the SAV model and netsim invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.packets import int_to_ip, same_prefix
from repro.spoofing import (
    BEVERLY_PROFILE,
    SPOOF_ANY,
    SPOOF_NONE,
    SpoofingProfile,
    feasibility_summary,
    sample_scopes,
    scope_permits,
)

ips = st.integers(min_value=0, max_value=0xFFFFFFFF).map(int_to_ip)
scopes = st.sampled_from([SPOOF_NONE, 24, 16, SPOOF_ANY])


class TestScopeProperties:
    @given(scope=scopes, ip=ips)
    def test_own_address_always_permitted(self, scope, ip):
        assert scope_permits(scope, ip, ip)

    @given(claimed=ips, true=ips)
    def test_none_permits_only_self(self, claimed, true):
        assert scope_permits(SPOOF_NONE, claimed, true) == (claimed == true)

    @given(claimed=ips, true=ips)
    def test_any_permits_everything(self, claimed, true):
        assert scope_permits(SPOOF_ANY, claimed, true)

    @given(claimed=ips, true=ips)
    def test_wider_scope_is_superset(self, claimed, true):
        """Anything a /24 scope permits, a /16 scope also permits."""
        if scope_permits(24, claimed, true):
            assert scope_permits(16, claimed, true)
        if scope_permits(16, claimed, true):
            assert scope_permits(SPOOF_ANY, claimed, true)

    @given(claimed=ips, true=ips, prefix=st.sampled_from([16, 24]))
    def test_scope_matches_prefix_definition(self, claimed, true, prefix):
        assert scope_permits(prefix, claimed, true) == (
            claimed == true or same_prefix(claimed, true, prefix)
        )


class TestProfileProperties:
    @given(
        frac_any=st.floats(0, 0.2),
        extra16=st.floats(0, 0.3),
        extra24=st.floats(0, 0.5),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=30, deadline=None)
    def test_sampled_fractions_track_profile(self, frac_any, extra16, extra24, seed):
        frac16 = frac_any + extra16
        frac24 = frac16 + extra24
        if frac24 > 1:
            return
        profile = SpoofingProfile(
            frac_slash24=frac24, frac_slash16=frac16, frac_any=frac_any
        )
        scopes_drawn = sample_scopes(random.Random(seed), 5000, profile)
        summary = feasibility_summary(scopes_drawn)
        assert abs(summary["frac_slash24"] - frac24) < 0.05
        assert abs(summary["frac_slash16"] - frac16) < 0.05
        assert abs(summary["frac_any"] - frac_any) < 0.05

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=20, deadline=None)
    def test_summary_fractions_are_nested(self, seed):
        scopes_drawn = sample_scopes(random.Random(seed), 2000, BEVERLY_PROFILE)
        summary = feasibility_summary(scopes_drawn)
        assert summary["frac_any"] <= summary["frac_slash16"] <= summary["frac_slash24"] <= 1
