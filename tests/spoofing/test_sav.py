"""Unit tests for the SAV / spoofing-feasibility model."""

import random

import pytest

from repro.spoofing import (
    BEVERLY_PROFILE,
    SAVFilter,
    SPOOF_ANY,
    SPOOF_NONE,
    SpoofingProfile,
    feasibility_summary,
    sample_scopes,
    scope_permits,
)


class TestScopePermits:
    def test_own_address_always_allowed(self):
        assert scope_permits(SPOOF_NONE, "10.0.0.1", "10.0.0.1")

    def test_none_blocks_all_spoofing(self):
        assert not scope_permits(SPOOF_NONE, "10.0.0.2", "10.0.0.1")

    def test_any_allows_everything(self):
        assert scope_permits(SPOOF_ANY, "203.0.113.9", "10.0.0.1")

    def test_slash24_scope(self):
        assert scope_permits(24, "10.0.0.99", "10.0.0.1")
        assert not scope_permits(24, "10.0.1.99", "10.0.0.1")

    def test_slash16_scope(self):
        assert scope_permits(16, "10.0.200.99", "10.0.0.1")
        assert not scope_permits(16, "10.1.0.99", "10.0.0.1")


class TestSpoofingProfile:
    def test_beverly_defaults(self):
        assert BEVERLY_PROFILE.frac_slash24 == 0.77
        assert BEVERLY_PROFILE.frac_slash16 == 0.11

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            SpoofingProfile(frac_slash24=0.1, frac_slash16=0.5)

    def test_draw_scope_distribution(self):
        rng = random.Random(3)
        scopes = [BEVERLY_PROFILE.draw_scope(rng) for _ in range(20000)]
        summary = feasibility_summary(scopes)
        assert abs(summary["frac_slash24"] - 0.77) < 0.02
        assert abs(summary["frac_slash16"] - 0.11) < 0.02

    def test_sample_scopes_length(self):
        rng = random.Random(1)
        assert len(sample_scopes(rng, 10)) == 10

    def test_feasibility_summary_empty(self):
        summary = feasibility_summary([])
        assert summary["total"] == 0
        assert summary["frac_slash24"] == 0.0

    def test_feasibility_inclusive_semantics(self):
        # A /16-capable host can also spoof within its /24.
        summary = feasibility_summary([16, 24, SPOOF_NONE, SPOOF_ANY])
        assert summary["frac_slash24"] == 0.75
        assert summary["frac_slash16"] == 0.5
        assert summary["frac_any"] == 0.25


class TestSAVFilter:
    def test_strict_blocks_spoofing(self):
        sav = SAVFilter.strict()
        assert sav.permits("10.0.0.1", "10.0.0.1")
        assert not sav.permits("10.0.0.2", "10.0.0.1")
        assert sav.checked == 2
        assert sav.rejected == 1

    def test_permissive_allows_all(self):
        sav = SAVFilter.permissive()
        assert sav.permits("203.0.113.1", "10.0.0.1")
        assert sav.rejected == 0

    def test_scope_lookup_filter(self):
        scopes = {"10.0.0.1": 24, "10.0.0.2": SPOOF_NONE}
        sav = SAVFilter(lambda ip: scopes.get(ip, SPOOF_NONE))
        assert sav.permits("10.0.0.77", "10.0.0.1")
        assert not sav.permits("10.0.0.77", "10.0.0.2")

    def test_from_network(self):
        from repro.netsim import build_censored_as

        topo = build_censored_as(population_size=2, spoof_scope=24)
        sav = SAVFilter.from_network(topo.network)
        host = topo.population[0]
        same_24 = host.ip.rsplit(".", 1)[0] + ".250"
        assert sav.permits(same_24, host.ip)
        assert not sav.permits("10.99.0.1", host.ip)
