"""End-to-end integration tests: the paper's headline claims.

Each test here is a miniature of one evaluation experiment, run through the
full stack (packets -> simulator -> censor -> surveillance -> technique ->
risk model) with no mocking anywhere.
"""

import pytest

from repro.core import (
    DDoSMeasurement,
    MeasurementCampaign,
    OvertHTTPMeasurement,
    ScanMeasurement,
    ScanTarget,
    SpamMeasurement,
    StatelessSpoofedDNSMeasurement,
    Verdict,
    assess_risk,
    evaluate_technique,
)
from repro.core.evaluation import (
    BLOCKED_TARGETS,
    BLOCKED_TARGETS_FULL,
    CONTROL_TARGETS,
    CONTROL_TARGETS_FULL,
    build_environment,
)


TARGETS = BLOCKED_TARGETS + CONTROL_TARGETS


class TestE1Matrix:
    """Every stealthy method must be accurate AND evasive (paper §3.2)."""

    def test_spam_row(self):
        outcome = evaluate_technique(
            lambda env: SpamMeasurement(env.ctx, TARGETS), "spam", seed=60
        )
        assert outcome.successful

    def test_ddos_row(self):
        outcome = evaluate_technique(
            lambda env: DDoSMeasurement(env.ctx, TARGETS, requests_per_target=25),
            "ddos", seed=60,
        )
        assert outcome.successful

    def test_scan_row(self):
        def factory(env):
            if env.censor.policy.ip_blocking:
                env.censor.policy.blocked_ips.add(env.topo.blocked_web.ip)
            return ScanMeasurement(
                env.ctx,
                [ScanTarget(env.topo.blocked_web.ip, [80], "twitter.com"),
                 ScanTarget(env.topo.control_web.ip, [80], "example.org")],
                port_count=60,
            )

        outcome = evaluate_technique(
            factory, "scan",
            blocked_targets=["twitter.com"], control_targets=["example.org"],
            seed=60,
        )
        assert outcome.successful

    def test_overt_baseline_fails_evasion(self):
        outcome = evaluate_technique(
            lambda env: OvertHTTPMeasurement(env.ctx, TARGETS), "overt-http", seed=60
        )
        assert outcome.accuracy == 1.0
        assert not outcome.evades_surveillance


class TestE9RiskComparison:
    """Overt vs. stealthy: who gets attributed (the paper's headline)."""

    def test_headline_comparison(self):
        full = list(BLOCKED_TARGETS_FULL) + CONTROL_TARGETS_FULL

        # Overt campaign over the full target list.
        env = build_environment(censored=True, seed=61, population_size=12)
        env.surveillance.analyst.escalation_threshold = 1
        overt = OvertHTTPMeasurement(env.ctx, full)
        overt.start()
        env.run(duration=90.0)
        overt_risk = assess_risk(env.surveillance, "overt", "measurer",
                                 env.topo.measurement_client.ip, now=env.sim.now)

        # Spam campaign over the same list.
        env2 = build_environment(censored=True, seed=61, population_size=12)
        env2.surveillance.analyst.escalation_threshold = 1
        spam = SpamMeasurement(env2.ctx, full)
        spam.start()
        env2.run(duration=90.0)
        spam_risk = assess_risk(env2.surveillance, "spam", "measurer",
                                env2.topo.measurement_client.ip, now=env2.sim.now)

        assert overt_risk.attributed_alerts > 0
        assert overt_risk.investigated
        assert spam_risk.attributed_alerts == 0
        assert not spam_risk.investigated
        assert spam_risk.risk_score() < overt_risk.risk_score()

    def test_spoofed_cover_dilutes_confidence(self):
        env = build_environment(censored=True, seed=61, population_size=15)
        technique = StatelessSpoofedDNSMeasurement(
            env.ctx, list(BLOCKED_TARGETS_FULL), env.cover_ips(12)
        )
        technique.start()
        env.run(duration=60.0)
        risk = assess_risk(env.surveillance, "spoofed-dns", "measurer",
                           env.topo.measurement_client.ip, now=env.sim.now)
        assert risk.attribution_confidence < 0.15
        assert risk.suspect_entropy > 3.0


class TestCampaignIntegration:
    def test_mixed_campaign_with_population_traffic(self):
        env = build_environment(censored=True, seed=62, population_size=10,
                                with_population_traffic=True,
                                population_duration=20.0)
        campaign = MeasurementCampaign(env.sim)
        campaign.add(SpamMeasurement(env.ctx, BLOCKED_TARGETS), at=1.0)
        campaign.add(DDoSMeasurement(env.ctx, ["twitter.com"], requests_per_target=15),
                     at=5.0)
        campaign.start()
        env.run(duration=60.0)
        grouped = campaign.results_by_technique()
        assert {r.verdict for r in grouped["spam"]} == {Verdict.DNS_POISONED}
        assert grouped["ddos"][0].verdict is Verdict.DNS_POISONED
        # The measurer stays clean even with realistic background noise.
        assert env.surveillance.attributed_alerts_for_user("measurer") == []

    def test_population_noise_produces_some_alerts(self):
        """Background users DO touch censored content (Syria rate), so the
        alert store is non-trivially populated — yet none points at us."""
        env = build_environment(censored=False, seed=63, population_size=15,
                                with_population_traffic=True,
                                population_duration=40.0)
        env.population_mix.web.censored_fraction = 0.3  # amplified for test speed
        env.run(duration=60.0)
        report = env.surveillance.suspect_report()
        assert report.total > 0
        assert report.confidence("measurer") == 0.0


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def run_once():
            env = build_environment(censored=True, seed=64, population_size=5)
            technique = SpamMeasurement(env.ctx, TARGETS)
            technique.start()
            env.run(duration=30.0)
            return [(r.target, r.verdict.value, r.detail) for r in technique.results]

        assert run_once() == run_once()
