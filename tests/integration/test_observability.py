"""Acceptance: observability is deterministic and conserves packets.

Two properties the obs layer must hold for its exports to be trustworthy
evidence rather than decoration:

1. **Same seed => byte-identical exports.**  The trace JSONL and the
   metrics report of two identical instrumented runs must match byte for
   byte — any hash-ordering or wall-clock leak breaks this immediately.
2. **Conservation cross-check.**  The registry's per-link counters are
   recorded on a completely separate path from ``DirectionStats`` (the
   counters inside ``Link.transmit``).  On an impaired 1000-port scan
   they must agree exactly, direction by direction, drop for drop.
"""

from repro.analysis import run_report
from repro.core import MeasurementContext, RetryPolicy, ScanMeasurement, ScanTarget
from repro.netsim import WebServer, build_three_node, burst_loss_profile
from repro.obs import MetricsRegistry, Tracer, canonical_json, use_registry, use_tracer


def instrumented_scan(seed=29, port_count=1000, duration=600.0):
    """One fully instrumented impaired scan; returns (topo, registry, tracer)."""
    registry = MetricsRegistry()
    tracer = Tracer()
    with use_registry(registry), use_tracer(tracer):
        topo = build_three_node(seed=seed)
        WebServer(topo.server)
        topo.network.impair_all_links(
            burst_loss_profile(marginal=0.05, mean_burst_length=5.0, jitter=0.001)
        )
        ctx = MeasurementContext(
            client=topo.client,
            retry_policy=RetryPolicy(max_attempts=5, timeout=1.0),
        )
        technique = ScanMeasurement(
            ctx,
            [ScanTarget(topo.server.ip, [80], "server")],
            port_count=port_count,
            probe_interval=0.005,
            timeout=1.0,
        )
    tracer.bind_clock(lambda: topo.sim.now)
    technique.start()
    topo.sim.run(until=topo.sim.now + duration)
    assert technique.done
    tracer.finalize()
    return topo, registry, tracer


class TestSameSeedDeterminism:
    def test_trace_and_metrics_exports_are_byte_identical(self, tmp_path):
        exports = []
        for run in ("a", "b"):
            topo, registry, tracer = instrumented_scan(
                seed=29, port_count=120, duration=300.0
            )
            trace_path = tracer.write_jsonl(str(tmp_path / f"{run}.trace.jsonl"))
            report = run_report(
                registry=registry, sim=topo.sim, links=topo.network.links
            )
            exports.append(
                (open(trace_path, "rb").read(), canonical_json(report))
            )
        (trace_a, report_a), (trace_b, report_b) = exports
        assert trace_a  # non-trivial: the runs actually traced something
        assert trace_a == trace_b
        assert report_a == report_b


class TestConservationCrossCheck:
    def test_registry_counters_equal_direction_stats_on_1000_port_scan(self):
        topo, registry, _ = instrumented_scan(seed=29, port_count=1000)

        offered = registry.get("link_packets_offered_total")
        carried = registry.get("link_packets_carried_total")
        dropped = registry.get("link_packets_dropped_total")
        duplicated = registry.get("link_packets_duplicated_total")
        assert offered is not None and dropped is not None

        # Sum drop rows per (link, direction); remember which models dropped.
        drops_by_direction = {}
        reasons = set()
        for (link, direction, reason), count in dropped.labelled():
            drops_by_direction[(link, direction)] = (
                drops_by_direction.get((link, direction), 0) + count
            )
            reasons.add(reason)

        checked = 0
        total_lost = 0
        for link in topo.network.links:
            name = f"{link.a.name}<->{link.b.name}"
            for direction, stats in link.stats.items():
                key = (name, direction)
                assert offered.value(key) == stats.packets_offered
                assert carried.value(key) == stats.packets_carried
                assert duplicated.value(key) == stats.packets_duplicated
                assert drops_by_direction.get(key, 0) == stats.packets_lost
                total_lost += stats.packets_lost
                checked += 1

        assert checked >= 4  # at least two links, both directions
        # The path really was hostile, and the drops name their impairment
        # model — not the flat legacy loss knob.
        assert total_lost > 0
        assert reasons and "legacy_loss" not in reasons

    def test_run_report_folds_all_sections(self):
        topo, registry, _ = instrumented_scan(seed=29, port_count=50, duration=120.0)
        report = run_report(
            registry=registry, sim=topo.sim, links=topo.network.links
        )
        assert set(report) == {"metrics", "simulator", "links"}
        assert report["simulator"]["events_fired"] > 0
        assert "tcp_retransmitted_segments_total" in report["metrics"]["instruments"]
        for entry in report["links"].values():
            assert entry["conserved"] is True
