"""Literal reproduction of the paper's Figure 1 controlled environment.

Three nodes — a client, a software switch, a server — with two IDS
instances on the switch: one configured as the censor, one as the
surveillance MVR.  "We declared a measurement successful if it can detect
blocking (as controlled by our modifications to the censorship system)
without triggering the MVR to log its traffic."
"""

import pytest

from repro.censor import CensorshipPolicy, GreatFirewall
from repro.core import (
    MeasurementContext,
    ScanMeasurement,
    ScanTarget,
    Verdict,
)
from repro.netsim import WebServer, build_three_node, http_get
from repro.surveillance import AttributionEngine, SurveillanceSystem

VARIABLES = {"HOME_NET": "10.0.0.0/24", "EXTERNAL_NET": "any"}


def figure1(censored: bool):
    topo = build_three_node(seed=13)
    topo.client.user = "tester"
    policy = CensorshipPolicy() if censored else CensorshipPolicy.disabled()
    censor = GreatFirewall(policy=policy, variables=VARIABLES)
    mvr = SurveillanceSystem(
        attribution=AttributionEngine.from_network(topo.network),
        variables=VARIABLES,
    )
    # Both IDS instances ride the same switch, like the two Snort
    # processes on the OVS box.
    topo.switch.add_tap(mvr)
    topo.switch.add_tap(censor)
    WebServer(topo.server, default_body="<html>served content</html>")
    return topo, censor, mvr


class TestKeywordMeasurement:
    def test_detects_blocking_when_censor_on(self):
        topo, censor, mvr = figure1(censored=True)
        results = []
        http_get(topo.client, topo.server.ip, "example.com", "/falun",
                 callback=results.append)
        topo.run()
        assert results[0].status == "reset"
        assert censor.events_by_mechanism("keyword")

    def test_silent_when_censor_off(self):
        topo, censor, mvr = figure1(censored=False)
        results = []
        http_get(topo.client, topo.server.ip, "example.com", "/falun",
                 callback=results.append)
        topo.run()
        assert results[0].ok
        assert censor.events == []


class TestScanMeasurementOnFigure1:
    def _scan(self, censored: bool):
        topo, censor, mvr = figure1(censored=censored)
        if censored:
            censor.policy.blocked_ips.add(topo.server.ip)
        ctx = MeasurementContext(client=topo.client)
        technique = ScanMeasurement(
            ctx, [ScanTarget(topo.server.ip, [80], "server")], port_count=50
        )
        technique.start()
        topo.sim.run(until=topo.sim.now + 30.0)
        return topo, censor, mvr, technique

    def test_accuracy_both_conditions(self):
        _, _, _, blocked_run = self._scan(censored=True)
        _, _, _, open_run = self._scan(censored=False)
        assert blocked_run.results[0].verdict is Verdict.BLOCKED_TIMEOUT
        assert open_run.results[0].verdict is Verdict.ACCESSIBLE

    def test_evasion_mvr_never_logs_the_tester(self):
        for censored in (True, False):
            _, _, mvr, _ = self._scan(censored=censored)
            assert mvr.attributed_alerts_for_user("tester") == []

    def test_mvr_classified_the_scan_as_recon(self):
        _, _, mvr, _ = self._scan(censored=False)
        assert mvr.discarded_by_class.get("scan", 0) > 0

    def test_success_criterion_met(self):
        """The paper's definition, verbatim: detect blocking without
        triggering the MVR to log the traffic."""
        _, censor, mvr, technique = self._scan(censored=True)
        detected = technique.results[0].verdict.indicates_blocking
        logged = bool(mvr.attributed_alerts_for_user("tester"))
        assert detected and not logged
