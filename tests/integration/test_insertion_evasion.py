"""Insertion-attack study against the censor's reassembler.

Ptacek & Newsham's classic, in the form Khattak et al. applied to the GFC:
send a junk segment with a TTL that crosses the censor but dies before the
server.  The censor's reassembler consumes the junk at that sequence
position; when the real keyword bytes arrive at the same sequence number,
the censor treats them as a retransmission and ignores them — while the
server, which never saw the junk, reads the keyword.

These are accuracy-hazard tests, not a circumvention feature: a keyword
measurement must know whether the censor in front of it is desync-able,
or it will report "not censored" for content that is.
"""

import pytest

from repro.censor import GreatFirewall
from repro.core import MeasurementContext, build_environment
from repro.packets import ACK, IPPacket, PSH, SYN, TCPSegment


def raw_flow(env, ttl_to_censor_only):
    """Open a raw flow from the measurement client to the control web
    server and return helpers for crafting segments on it."""
    client = env.ctx.client
    server_ip = env.topo.control_web.ip
    client.stack.closed_port_rst = False
    sport = 47000
    state = {"client_isn": 5000}

    def sniff(packet):
        if packet.tcp is not None and packet.tcp.is_synack and packet.src == server_ip:
            state["server_isn"] = packet.tcp.seq

    client.stack.add_sniffer(sniff)

    def send(flags, seq, payload=b"", ttl=64):
        client.send_raw(IPPacket(
            src=client.ip, dst=server_ip, ttl=ttl,
            payload=TCPSegment(sport=sport, dport=80, seq=seq,
                               ack=state.get("server_isn", 0) + 1,
                               flags=flags, payload=payload),
        ))

    # Handshake.
    send(SYN, state["client_isn"], ttl=64)
    env.run(duration=2.0)
    send(ACK, state["client_isn"] + 1)
    env.run(duration=2.0)
    return send, state


# Path: client - internal(router) - border(censor tap) - transit - server.
# The border router decrements before its taps inspect, so a segment
# needs TTL 3 to survive internal (3->2) and border (2->1) decrements —
# the censor tap then sees it at TTL 1 — and die at transit (1->0):
# the censor sees the segment; the server never does.
TTL_CENSOR_ONLY = 3


class TestInsertionAttack:
    def test_censor_only_ttl_reaches_tap_not_server(self):
        env = build_environment(censored=True, seed=32, population_size=3)
        env.censor.policy.dns_poisoning = False
        seen_at_server = []
        env.topo.control_web.stack.add_sniffer(
            lambda p: seen_at_server.append(p) if p.tcp is not None else None
        )
        send, _state = raw_flow(env, TTL_CENSOR_ONLY)
        server_packets_before = len(seen_at_server)
        send(PSH | ACK, 5001, b"probe", ttl=TTL_CENSOR_ONLY)
        env.run(duration=2.0)
        assert len(seen_at_server) == server_packets_before  # died in transit

    def test_desync_blinds_the_censor(self):
        """Junk at seq N (censor-only TTL), then the keyword at seq N with
        full TTL: censor ignores the 'retransmission', server reads it."""
        env = build_environment(censored=True, seed=32, population_size=3)
        env.censor.policy.dns_poisoning = False
        send, state = raw_flow(env, TTL_CENSOR_ONLY)
        request = b"GET /falun HTTP/1.1\r\nHost: x\r\n\r\n"
        # 1. Insertion: junk of the same length, censor-only TTL.
        send(PSH | ACK, state["client_isn"] + 1, b"X" * len(request),
             ttl=TTL_CENSOR_ONLY)
        env.run(duration=2.0)
        # 2. The real keyword bytes at the same sequence position.
        send(PSH | ACK, state["client_isn"] + 1, request, ttl=64)
        env.run(duration=5.0)
        # Censor never fired; the server served the keyword request.
        assert env.censor.events_by_mechanism("keyword") == []
        assert env.servers["control_web"].request_log
        assert "falun" in env.servers["control_web"].request_log[0].path

    def test_without_insertion_the_censor_fires(self):
        """Control condition: the same flow minus the junk gets reset."""
        env = build_environment(censored=True, seed=32, population_size=3)
        env.censor.policy.dns_poisoning = False
        send, state = raw_flow(env, TTL_CENSOR_ONLY)
        request = b"GET /falun HTTP/1.1\r\nHost: x\r\n\r\n"
        send(PSH | ACK, state["client_isn"] + 1, request, ttl=64)
        env.run(duration=5.0)
        assert env.censor.events_by_mechanism("keyword")

    def test_measurement_accuracy_hazard(self):
        """A keyword probe riding a desynced flow wrongly reads 'open':
        the hazard the docstring warns about, demonstrated end-to-end."""
        env = build_environment(censored=True, seed=32, population_size=3)
        env.censor.policy.dns_poisoning = False
        send, state = raw_flow(env, TTL_CENSOR_ONLY)
        request = b"GET /falun HTTP/1.1\r\nHost: x\r\n\r\n"
        send(PSH | ACK, state["client_isn"] + 1, b"Y" * len(request),
             ttl=TTL_CENSOR_ONLY)
        env.run(duration=2.0)
        send(PSH | ACK, state["client_isn"] + 1, request, ttl=64)
        env.run(duration=5.0)
        # Ground truth says this keyword IS censored (the control test
        # above proves it), yet this flow completed without a reset —
        # a false 'accessible' verdict if the prober trusted it.
        assert env.censor.rst_injections == 0
