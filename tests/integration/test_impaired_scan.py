"""Acceptance: measurement safety on a hostile (but uncensored) path.

The PR's headline criterion: over a 5% Gilbert–Elliott burst-loss link
with *no censor anywhere*, a retrying scanner sweeping 1000 ports must
report zero blocked verdicts and leave zero ports unresolved, while the
single-shot baseline demonstrably reports false blocks on the identical
path.  That gap — not any new detection power — is the argument for the
retry layer.
"""

import pytest

from repro.analysis import ConfusionCounts, false_block_curve, link_report, score_results
from repro.core import (
    MeasurementContext,
    RetryPolicy,
    ScanMeasurement,
    ScanTarget,
    Verdict,
)
from repro.netsim import WebServer, build_three_node, burst_loss_profile


def scan_under_burst_loss(policy, port_count=1000, marginal=0.05, seed=29):
    topo = build_three_node(seed=seed)
    WebServer(topo.server)
    topo.network.impair_all_links(
        burst_loss_profile(marginal=marginal, mean_burst_length=5.0, jitter=0.001)
    )
    ctx = MeasurementContext(client=topo.client, retry_policy=policy)
    technique = ScanMeasurement(
        ctx,
        [ScanTarget(topo.server.ip, [80], "server")],
        port_count=port_count,
        probe_interval=0.005,
        timeout=1.0,
    )
    technique.start()
    topo.sim.run(until=topo.sim.now + 600.0)
    assert technique.done
    return topo, technique.results[0]


class TestThousandPortAcceptance:
    def test_retrying_scan_reports_zero_blocked_across_1000_ports(self):
        topo, result = scan_under_burst_loss(
            RetryPolicy(max_attempts=5, timeout=1.0)
        )
        # The path really was hostile...
        assert sum(link.packets_lost for link in topo.network.links) > 0
        # ...yet nothing is called blocked and no port stays unresolved.
        assert not result.blocked
        assert result.verdict is Verdict.ACCESSIBLE
        assert result.evidence["unresolved_ports"] == 0
        assert result.evidence["ports_scanned"] >= 1000
        assert result.attempts > 1

    def test_single_shot_baseline_false_blocks_on_the_same_path(self):
        _, result = scan_under_burst_loss(RetryPolicy.single_shot(timeout=1.0))
        # Lost SYNs/RSTs leave ports "filtered" — the raw material of
        # false blocked verdicts — on a path with no censor at all.
        assert result.evidence["unresolved_ports"] > 0

    def test_link_accounting_is_conserved_end_to_end(self):
        topo, _ = scan_under_burst_loss(RetryPolicy(max_attempts=3, timeout=1.0))
        report = link_report(topo.network.links)
        assert report
        for entry in report.values():
            assert entry["conserved"] is True


def _confusion_at_loss(loss_rate: float, policy: RetryPolicy) -> ConfusionCounts:
    _, result = scan_under_burst_loss(
        policy, port_count=100, marginal=loss_rate, seed=31
    )
    return score_results([result], {"server": False})


@pytest.mark.slow
class TestFalseBlockCurve:
    """The paper-style safety curve: false-block rate vs. path loss."""

    LOSS_RATES = [0.0, 0.02, 0.05, 0.10, 0.15]

    def test_retrying_curve_stays_at_zero(self):
        curve = false_block_curve(
            self.LOSS_RATES,
            lambda loss: _confusion_at_loss(
                loss, RetryPolicy(max_attempts=6, timeout=1.0)
            ),
        )
        assert all(rate == 0.0 for _, rate in curve)

    def test_single_shot_curve_climbs_with_loss(self):
        curve = false_block_curve(
            self.LOSS_RATES,
            lambda loss: _confusion_at_loss(loss, RetryPolicy.single_shot(timeout=1.0)),
        )
        assert curve[0][1] == 0.0  # lossless: no false blocks
        assert any(rate > 0.0 for _, rate in curve[1:])
