"""Unit tests for the host protocol stack (TCP state machine, UDP, ICMP)."""

import pytest

from repro.netsim import Host, Network, Simulator, Switch, build_three_node
from repro.packets import (
    ACK,
    ICMP_DEST_UNREACH,
    ICMPMessage,
    IPPacket,
    RST,
    SYN,
    TCPSegment,
    UDPDatagram,
)


@pytest.fixture
def pair():
    topo = build_three_node(seed=3)
    return topo.sim, topo.client, topo.server


class TestTCPHandshake:
    def test_connect_and_exchange_data(self, pair):
        sim, client, server = pair
        server_events, client_events = [], []

        def acceptor(conn):
            conn.handler = lambda e, d: server_events.append((e, d))
            # Echo on data.
            original = conn.handler
            def handler(e, d):
                server_events.append((e, d))
                if e == "data":
                    conn.send(b"echo:" + d)
            conn.handler = handler

        server.stack.tcp_listen(7, acceptor)
        conn = client.stack.tcp_connect(server.ip, 7,
                                        lambda e, d: client_events.append((e, d)))
        sim.run()
        assert ("connected", b"") in client_events
        conn.send(b"hi")
        sim.run()
        assert ("data", b"hi") in server_events
        assert ("data", b"echo:hi") in client_events

    def test_send_before_connected_is_buffered(self, pair):
        sim, client, server = pair
        received = []

        def acceptor(conn):
            conn.handler = lambda e, d: received.append((e, d)) if e == "data" else None

        server.stack.tcp_listen(8, acceptor)
        conn = client.stack.tcp_connect(server.ip, 8, lambda e, d: None)
        conn.send(b"early")  # before handshake completes
        sim.run()
        assert ("data", b"early") in received

    def test_connect_to_closed_port_resets(self, pair):
        sim, client, server = pair
        events = []
        client.stack.tcp_connect(server.ip, 9999, lambda e, d: events.append(e))
        sim.run()
        assert "reset" in events

    def test_connect_timeout_when_no_route(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add(Host("a", "10.0.0.1"))
        s = net.add(Switch("s"))
        net.connect(a, s)
        events = []
        a.stack.tcp_connect("203.0.113.1", 80, lambda e, d: events.append(e), timeout=1.0)
        sim.run()
        assert events == ["timeout"]

    def test_byte_counters(self, pair):
        sim, client, server = pair
        def acceptor(conn):
            conn.handler = lambda e, d: None
        server.stack.tcp_listen(5, acceptor)
        conn = client.stack.tcp_connect(server.ip, 5, lambda e, d: None)
        sim.run()
        conn.send(b"x" * 100)
        sim.run()
        assert conn.bytes_sent == 100


class TestTCPTeardown:
    def _connected_pair(self, pair, port=20):
        sim, client, server = pair
        server_conns = []
        def acceptor(conn):
            conn.handler = lambda e, d: None
            server_conns.append(conn)
        server.stack.tcp_listen(port, acceptor)
        client_events = []
        conn = client.stack.tcp_connect(server.ip, port,
                                        lambda e, d: client_events.append(e))
        sim.run()
        return sim, conn, server_conns[0], client_events

    def test_fin_close_sequence(self, pair):
        sim, client_conn, server_conn, client_events = self._connected_pair(pair)
        fin_seen = []
        server_conn.handler = lambda e, d: fin_seen.append(e)
        client_conn.close()
        sim.run()
        assert "fin" in fin_seen
        server_conn.close()
        sim.run()
        assert "closed" in client_events
        assert client_conn.state == "CLOSED"

    def test_abort_sends_rst(self, pair):
        sim, client_conn, server_conn, _ = self._connected_pair(pair, port=21)
        events = []
        server_conn.handler = lambda e, d: events.append(e)
        client_conn.abort()
        sim.run()
        assert "reset" in events

    def test_rst_mid_stream_resets_both(self, pair):
        sim, client_conn, server_conn, client_events = self._connected_pair(pair, port=22)
        # Forge an in-window RST from a third party (like a censor).
        rst = IPPacket(
            src=server_conn.stack.host.ip,
            dst=client_conn.stack.host.ip,
            payload=TCPSegment(
                sport=server_conn.local_port,
                dport=client_conn.local_port,
                seq=client_conn.rcv_nxt,
                flags=RST,
            ),
        )
        server_conn.stack.host.network.originate(rst, server_conn.stack.host)
        sim.run()
        assert "reset" in client_events


class TestClosedPortBehaviour:
    def test_unsolicited_syn_gets_rst_ack(self, pair):
        sim, client, server = pair
        answers = []
        client.stack.add_sniffer(lambda p: answers.append(p) if p.tcp else None)
        syn = IPPacket(src=client.ip, dst=server.ip,
                       payload=TCPSegment(sport=100, dport=4444, seq=50, flags=SYN))
        client.send_raw(syn)
        sim.run()
        rsts = [p for p in answers if p.tcp.is_rst]
        assert rsts
        assert rsts[0].tcp.ack == 51  # seq + 1 for the SYN

    def test_unsolicited_synack_gets_rst(self, pair):
        # The spoofed-client replay problem: a SYN/ACK for a connection the
        # host never opened draws a RST (paper Section 4.1).
        sim, client, server = pair
        seen_at_server = []
        server.stack.add_sniffer(lambda p: seen_at_server.append(p) if p.tcp else None)
        synack = IPPacket(src=server.ip, dst=client.ip,
                          payload=TCPSegment(sport=80, dport=5555, seq=10, ack=99,
                                             flags=SYN | ACK))
        server.send_raw(synack)
        sim.run()
        rsts = [p for p in seen_at_server if p.tcp.is_rst and p.src == client.ip]
        assert rsts
        assert rsts[0].tcp.seq == 99  # RST seq = incoming ack

    def test_rst_never_answered_with_rst(self, pair):
        sim, client, server = pair
        seen = []
        client.stack.add_sniffer(lambda p: seen.append(p) if p.tcp else None)
        rst = IPPacket(src=client.ip, dst=server.ip,
                       payload=TCPSegment(sport=1, dport=2, seq=5, flags=RST))
        client.send_raw(rst)
        sim.run()
        assert seen == []

    def test_firewalled_host_silent(self, pair):
        sim, client, server = pair
        server.stack.closed_port_rst = False
        seen = []
        client.stack.add_sniffer(lambda p: seen.append(p) if p.tcp else None)
        client.send_raw(IPPacket(src=client.ip, dst=server.ip,
                                 payload=TCPSegment(sport=1, dport=4444, flags=SYN)))
        sim.run()
        assert seen == []


class TestUDP:
    def test_request_reply(self, pair):
        sim, client, server = pair
        server.stack.udp_listen(53, lambda data, src, sport, reply: reply(b"pong:" + data))
        replies = []
        client.stack.udp_request(server.ip, 53, b"ping",
                                 on_reply=lambda d, p: replies.append(d))
        sim.run()
        assert replies == [b"pong:ping"]

    def test_request_timeout(self, pair):
        sim, client, server = pair
        timeouts = []
        # Server listens on 53 but never replies.
        server.stack.udp_listen(53, lambda *args: None)
        client.stack.udp_request(server.ip, 53, b"ping",
                                 on_reply=lambda d, p: None,
                                 on_timeout=lambda: timeouts.append(1),
                                 timeout=0.5)
        sim.run()
        assert timeouts == [1]

    def test_closed_udp_port_gets_icmp_unreachable(self, pair):
        sim, client, server = pair
        icmp = []
        client.stack.add_sniffer(lambda p: icmp.append(p) if p.icmp else None)
        client.stack.udp_send(server.ip, 9999, b"data")
        sim.run()
        assert icmp
        assert icmp[0].icmp.icmp_type == ICMP_DEST_UNREACH

    def test_icmp_unreachable_cancels_pending_request(self, pair):
        sim, client, server = pair
        timeouts = []
        client.stack.udp_request(server.ip, 9999, b"q",
                                 on_reply=lambda d, p: None,
                                 on_timeout=lambda: timeouts.append(1),
                                 timeout=30.0)
        sim.run(until=5.0)
        assert timeouts == [1]  # ICMP arrived long before the timeout

    def test_duplicate_bind_rejected(self, pair):
        _, client, _ = pair
        client.stack.udp_listen(1000, lambda *a: None)
        with pytest.raises(ValueError):
            client.stack.udp_listen(1000, lambda *a: None)


class TestICMPEcho:
    def test_ping_reply(self, pair):
        sim, client, server = pair
        replies = []
        client.stack.add_sniffer(lambda p: replies.append(p) if p.icmp else None)
        client.send_ip(IPPacket(src=client.ip, dst=server.ip,
                                payload=ICMPMessage.echo_request(ident=3)))
        sim.run()
        assert replies and replies[0].icmp.ident == 3

    def test_ping_disabled(self, pair):
        sim, client, server = pair
        server.stack.respond_to_ping = False
        replies = []
        client.stack.add_sniffer(lambda p: replies.append(p) if p.icmp else None)
        client.send_ip(IPPacket(src=client.ip, dst=server.ip,
                                payload=ICMPMessage.echo_request()))
        sim.run()
        assert replies == []


class TestEphemeralPorts:
    def test_ports_increment(self, pair):
        _, client, _ = pair
        first = client.stack.ephemeral_port()
        second = client.stack.ephemeral_port()
        assert second == first + 1

    def test_ports_wrap(self, pair):
        _, client, _ = pair
        client.stack._next_ephemeral = 60999
        assert client.stack.ephemeral_port() == 60999
        assert client.stack.ephemeral_port() == 32768
