"""Tests for the two-country comparative topology."""

import pytest

from repro.censor import CensorshipPolicy, GreatFirewall
from repro.netsim import DNSServer, WebServer, Zone, http_get, resolve
from repro.netsim.multicountry import build_two_country
from repro.packets import QTYPE_A


@pytest.fixture
def world():
    topo = build_two_country(seed=24, clients_per_country=3)
    zone = Zone()
    for domain, ip in topo.domains.items():
        zone.add_a(domain, ip)
    DNSServer(topo.dns_server, zone)
    WebServer(topo.blocked_web)
    WebServer(topo.control_web)
    # Country alpha: GFC regime.  Country beta: block-page regime with DNS
    # left truthful (it blocks at HTTP only).
    gfc = GreatFirewall(policy=CensorshipPolicy.gfc_preset(),
                        variables={"HOME_NET": "10.10.0.0/16", "EXTERNAL_NET": "any"})
    blockpage_policy = CensorshipPolicy.blockpage_preset()
    blockpage_policy.dns_poisoning = False
    blockpage = GreatFirewall(policy=blockpage_policy,
                              variables={"HOME_NET": "10.20.0.0/16", "EXTERNAL_NET": "any"})
    topo.country_a.border_router.add_tap(gfc)
    topo.country_b.border_router.add_tap(blockpage)
    return topo, gfc, blockpage


class TestTopology:
    def test_distinct_address_spaces(self, world):
        topo, _, _ = world
        assert all(c.ip.startswith("10.10.") for c in topo.country_a.clients)
        assert all(c.ip.startswith("10.20.") for c in topo.country_b.clients)

    def test_cross_country_reachability(self, world):
        topo, _, _ = world
        got = []
        topo.country_b.clients[1].stack.udp_listen(9, lambda d, *r: got.append(d))
        topo.country_a.clients[0].stack.udp_send(
            topo.country_b.clients[1].ip, 9, b"hello"
        )
        topo.run()
        assert got == [b"hello"]


class TestComparativeVantage:
    def test_same_domain_three_vantages(self, world):
        """One domain, three answers: DNS-injected in alpha, truthful-but-
        HTTP-blocked in beta, fully open from the control."""
        topo, gfc, blockpage = world
        answers = {}
        for label, vantage in (
            ("alpha", topo.country_a.vantage),
            ("beta", topo.country_b.vantage),
            ("control", topo.control_vantage),
        ):
            resolve(vantage, topo.dns_server.ip, "twitter.com", qtype=QTYPE_A,
                    callback=lambda r, l=label: answers.setdefault(l, r))
        topo.run()
        assert answers["alpha"].addresses == [gfc.policy.poison_ip]
        assert answers["beta"].addresses == [topo.blocked_web.ip]
        assert answers["control"].addresses == [topo.blocked_web.ip]

    def test_http_signatures_differ(self, world):
        topo, _, _ = world
        outcomes = {}
        for label, vantage in (
            ("beta", topo.country_b.vantage),
            ("control", topo.control_vantage),
        ):
            http_get(vantage, topo.blocked_web.ip, "twitter.com",
                     callback=lambda r, l=label: outcomes.setdefault(l, r))
        topo.run()
        assert outcomes["beta"].ok and outcomes["beta"].response.status == 403
        assert outcomes["control"].ok and outcomes["control"].response.status == 200

    def test_censors_act_independently(self, world):
        topo, gfc, blockpage = world
        resolve(topo.country_a.vantage, topo.dns_server.ip, "twitter.com",
                callback=lambda r: None)
        topo.run()
        assert gfc.dns_injections == 1
        assert blockpage.dns_injections == 0
