"""Property-based tests for network routing invariants."""

from hypothesis import given, settings, strategies as st

from repro.netsim import Host, Network, Router, Simulator, Switch
from repro.packets import IPPacket, UDPDatagram


def build_random_tree(structure, router_flags):
    """Build a random tree of forwarding nodes with hosts at the leaves.

    ``structure[i]`` is the parent index of forwarding node i+1 (node 0 is
    the root); one host hangs off every forwarding node.
    """
    sim = Simulator(seed=1)
    net = Network(sim)
    forwarders = []
    for index in range(len(structure) + 1):
        is_router = router_flags[index % len(router_flags)]
        node = Router(f"r{index}") if is_router else Switch(f"s{index}")
        net.add(node)
        forwarders.append(node)
    for child_index, parent_index in enumerate(structure, start=1):
        net.connect(forwarders[child_index], forwarders[parent_index % child_index])
    hosts = []
    for index, forwarder in enumerate(forwarders):
        host = net.add(Host(f"h{index}", f"10.0.{index // 250}.{index % 250 + 1}"))
        net.connect(host, forwarder)
        hosts.append(host)
    return sim, net, hosts


@settings(max_examples=25, deadline=None)
@given(
    structure=st.lists(st.integers(0, 100), min_size=1, max_size=12),
    router_flags=st.lists(st.booleans(), min_size=1, max_size=4),
    data=st.data(),
)
def test_any_tree_delivers_between_any_host_pair(structure, router_flags, data):
    """On every random tree topology, every host can reach every other."""
    sim, net, hosts = build_random_tree(structure, router_flags)
    src = data.draw(st.sampled_from(hosts))
    dst = data.draw(st.sampled_from(hosts))
    if src is dst:
        return
    delivered = []
    dst.stack.add_sniffer(lambda p: delivered.append(p) if p.udp else None)
    src.send_ip(IPPacket(src=src.ip, dst=dst.ip,
                         payload=UDPDatagram(sport=1, dport=7)))
    sim.run()
    assert len(delivered) == 1
    assert delivered[0].src == src.ip


@settings(max_examples=25, deadline=None)
@given(
    structure=st.lists(st.integers(0, 100), min_size=1, max_size=10),
    router_flags=st.lists(st.booleans(), min_size=1, max_size=3),
    data=st.data(),
)
def test_ttl_decrements_equal_router_hops(structure, router_flags, data):
    """Arriving TTL always equals initial TTL minus router count on path."""
    sim, net, hosts = build_random_tree(structure, router_flags)
    src = data.draw(st.sampled_from(hosts))
    dst = data.draw(st.sampled_from(hosts))
    if src is dst:
        return
    seen_ttl = []
    dst.stack.add_sniffer(lambda p: seen_ttl.append(p.ttl) if p.udp else None)
    src.send_ip(IPPacket(src=src.ip, dst=dst.ip, ttl=64,
                         payload=UDPDatagram(sport=1, dport=7)))
    sim.run()
    if not seen_ttl:
        return  # TTL expired: handled by the next assertion's contrapositive
    routers_crossed = 64 - seen_ttl[0]
    assert 0 <= routers_crossed <= len(structure) + 1
    # Re-sending with exactly that TTL must fail to arrive (expires at the
    # last router), while TTL+1 arrives — the boundary is exact.
    if routers_crossed > 0:
        boundary = []
        dst.stack.add_sniffer(
            lambda p: boundary.append(p.ttl) if p.udp and p.udp.dport == 8 else None
        )
        src.send_ip(IPPacket(src=src.ip, dst=dst.ip, ttl=routers_crossed,
                             payload=UDPDatagram(sport=1, dport=8)))
        src.send_ip(IPPacket(src=src.ip, dst=dst.ip, ttl=routers_crossed + 1,
                             payload=UDPDatagram(sport=1, dport=8)))
        sim.run()
        assert boundary == [1]
