"""Property-based tests for the simulated TCP stack."""

from hypothesis import given, settings, strategies as st

from repro.netsim import build_three_node


@settings(max_examples=30, deadline=None)
@given(chunks=st.lists(st.binary(min_size=1, max_size=500), min_size=1, max_size=10))
def test_stream_delivers_exact_bytes_in_order(chunks):
    """Whatever the application writes, the peer reads — exactly, in order."""
    topo = build_three_node(seed=25)
    received = bytearray()

    def acceptor(conn):
        conn.handler = lambda e, d: received.extend(d) if e == "data" else None

    topo.server.stack.tcp_listen(7, acceptor)
    events = []
    conn = topo.client.stack.tcp_connect(topo.server.ip, 7,
                                         lambda e, d: events.append(e))
    topo.run()
    for chunk in chunks:
        conn.send(chunk)
    topo.run()
    assert bytes(received) == b"".join(chunks)
    assert "connected" in events


@settings(max_examples=20, deadline=None)
@given(pairs=st.integers(min_value=1, max_value=8))
def test_concurrent_connections_do_not_interfere(pairs):
    """N simultaneous connections each carry their own byte stream."""
    topo = build_three_node(seed=26)
    received = {}

    def acceptor(conn):
        key = (conn.remote_ip, conn.remote_port)
        received[key] = bytearray()
        conn.handler = (
            lambda e, d, k=key: received[k].extend(d) if e == "data" else None
        )

    topo.server.stack.tcp_listen(9, acceptor)
    conns = []
    for index in range(pairs):
        conn = topo.client.stack.tcp_connect(topo.server.ip, 9, lambda e, d: None)
        conns.append((index, conn))
    topo.run()
    for index, conn in conns:
        conn.send(f"stream-{index}".encode() * 3)
    topo.run()
    assert len(received) == pairs
    payloads = sorted(bytes(buf) for buf in received.values())
    expected = sorted(f"stream-{i}".encode() * 3 for i in range(pairs))
    assert payloads == expected


@settings(max_examples=20, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=2000), min_size=1, max_size=5))
def test_byte_counters_match_traffic(sizes):
    topo = build_three_node(seed=27)

    def acceptor(conn):
        conn.handler = lambda e, d: None

    topo.server.stack.tcp_listen(11, acceptor)
    conn = topo.client.stack.tcp_connect(topo.server.ip, 11, lambda e, d: None)
    topo.run()
    for size in sizes:
        conn.send(b"z" * size)
    topo.run()
    assert conn.bytes_sent == sum(sizes)
