"""Tests for lossy links."""

import pytest

from repro.netsim import Host, Network, Simulator
from repro.packets import IPPacket, UDPDatagram


def lossy_pair(loss):
    sim = Simulator(seed=4)
    net = Network(sim)
    a = net.add(Host("a", "10.0.0.1"))
    b = net.add(Host("b", "10.0.0.2"))
    net.connect(a, b, loss=loss)
    return sim, net, a, b


class TestLossyLinks:
    def test_invalid_loss_rejected(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add(Host("a", "10.0.0.1"))
        b = net.add(Host("b", "10.0.0.2"))
        with pytest.raises(ValueError):
            net.connect(a, b, loss=1.0)
        with pytest.raises(ValueError):
            net.connect(a, b, loss=-0.1)

    def test_zero_loss_delivers_everything(self):
        sim, net, a, b = lossy_pair(0.0)
        got = []
        b.stack.add_sniffer(lambda p: got.append(p) if p.udp else None)
        for index in range(100):
            a.send_ip(IPPacket(src=a.ip, dst=b.ip,
                               payload=UDPDatagram(sport=1, dport=index + 1)))
        sim.run()
        # 100 datagrams + ICMP replies; count only the datagrams.
        assert len(got) == 100

    def test_loss_rate_approximately_respected(self):
        sim, net, a, b = lossy_pair(0.3)
        got = []
        b.stack.add_sniffer(lambda p: got.append(p) if p.udp else None)
        b.stack.udp_listen(7, lambda *args: None)  # swallow silently
        for _ in range(500):
            a.send_ip(IPPacket(src=a.ip, dst=b.ip,
                               payload=UDPDatagram(sport=1, dport=7)))
        sim.run()
        delivered_fraction = len(got) / 500
        assert 0.6 < delivered_fraction < 0.8
        assert net.links[0].packets_lost == 500 - len(got)

    def test_loss_surfaces_as_tcp_timeout(self):
        """Without retransmission, a lost handshake packet = timeout."""
        sim, net, a, b = lossy_pair(0.9)
        def acceptor(conn):
            conn.handler = lambda e, d: None
        b.stack.tcp_listen(80, acceptor)
        events = []
        for _ in range(10):
            a.stack.tcp_connect(b.ip, 80, lambda e, d: events.append(e), timeout=0.5)
        sim.run()
        assert "timeout" in events
