"""Tests for lossy links and per-direction accounting."""

import pytest

from repro.analysis import link_report
from repro.netsim import (
    Duplication,
    GilbertElliottLoss,
    Host,
    LatencyJitter,
    Network,
    Simulator,
)
from repro.packets import IPPacket, UDPDatagram


def lossy_pair(loss):
    sim = Simulator(seed=4)
    net = Network(sim)
    a = net.add(Host("a", "10.0.0.1"))
    b = net.add(Host("b", "10.0.0.2"))
    net.connect(a, b, loss=loss)
    return sim, net, a, b


class TestLossyLinks:
    def test_invalid_loss_rejected(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add(Host("a", "10.0.0.1"))
        b = net.add(Host("b", "10.0.0.2"))
        with pytest.raises(ValueError):
            net.connect(a, b, loss=1.0)
        with pytest.raises(ValueError):
            net.connect(a, b, loss=-0.1)

    def test_zero_loss_delivers_everything(self):
        sim, net, a, b = lossy_pair(0.0)
        got = []
        b.stack.add_sniffer(lambda p: got.append(p) if p.udp else None)
        for index in range(100):
            a.send_ip(IPPacket(src=a.ip, dst=b.ip,
                               payload=UDPDatagram(sport=1, dport=index + 1)))
        sim.run()
        # 100 datagrams + ICMP replies; count only the datagrams.
        assert len(got) == 100

    def test_loss_rate_approximately_respected(self):
        sim, net, a, b = lossy_pair(0.3)
        got = []
        b.stack.add_sniffer(lambda p: got.append(p) if p.udp else None)
        b.stack.udp_listen(7, lambda *args: None)  # swallow silently
        for _ in range(500):
            a.send_ip(IPPacket(src=a.ip, dst=b.ip,
                               payload=UDPDatagram(sport=1, dport=7)))
        sim.run()
        delivered_fraction = len(got) / 500
        assert 0.6 < delivered_fraction < 0.8
        assert net.links[0].packets_lost == 500 - len(got)

    def test_loss_surfaces_as_tcp_timeout(self):
        """Without retransmission, a lost handshake packet = timeout."""
        sim, net, a, b = lossy_pair(0.9)
        def acceptor(conn):
            conn.handler = lambda e, d: None
        b.stack.tcp_listen(80, acceptor)
        events = []
        for _ in range(10):
            a.stack.tcp_connect(
                b.ip, 80, lambda e, d: events.append(e), timeout=0.5, retransmit=False
            )
        sim.run()
        assert "timeout" in events


class TestPerDirectionAccounting:
    """Conservation: offered == carried - duplicated-extra + lost, per
    direction, under any impairment mix."""

    def _blast(self, models):
        sim = Simulator(seed=11)
        net = Network(sim)
        a = net.add(Host("a", "10.0.0.1"))
        b = net.add(Host("b", "10.0.0.2"))
        link = net.connect(a, b)
        link.impair(models)
        b.stack.udp_listen(7, lambda *args: None)
        a.stack.udp_listen(7, lambda *args: None)
        for _ in range(300):
            a.send_ip(IPPacket(src=a.ip, dst=b.ip,
                               payload=UDPDatagram(sport=7, dport=7)))
        for _ in range(200):
            b.send_ip(IPPacket(src=b.ip, dst=a.ip,
                               payload=UDPDatagram(sport=7, dport=7)))
        sim.run()
        return link

    def test_conservation_under_loss_and_duplication(self):
        link = self._blast(
            [
                GilbertElliottLoss.from_marginal(0.1, mean_burst_length=3.0),
                LatencyJitter(0.002),
                Duplication(0.1, copy_delay=0.001),
            ]
        )
        for direction in ("ab", "ba"):
            stats = link.stats[direction]
            assert stats.packets_offered > 0
            assert stats.conserved
            assert stats.packets_offered == (
                stats.packets_carried - stats.packets_duplicated + stats.packets_lost
            )
        # The mix really exercised both failure modes.
        assert link.packets_lost > 0
        assert link.packets_duplicated > 0

    def test_directions_account_independently(self):
        link = self._blast([GilbertElliottLoss.from_marginal(0.2)])
        assert link.stats["ab"].packets_offered == 300
        assert link.stats["ba"].packets_offered == 200
        assert link.packets_offered == 500

    def test_link_report_exposes_per_direction_stats(self):
        link = self._blast([GilbertElliottLoss.from_marginal(0.15)])
        report = link_report([link])
        entry = report["a<->b"]
        assert entry["conserved"] is True
        for direction in ("ab", "ba"):
            assert entry[direction]["conserved"] is True
            assert 0.0 < entry[direction]["loss_rate"] < 1.0
