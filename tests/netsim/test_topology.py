"""Unit tests for the reference topologies."""

import pytest

from repro.netsim import build_censored_as, build_three_node
from repro.packets import IPPacket, UDPDatagram
from repro.spoofing import SAVFilter


class TestThreeNode:
    def test_structure(self):
        topo = build_three_node()
        assert topo.client.ip == "10.0.0.1"
        assert topo.server.ip == "192.0.2.10"
        assert topo.switch.name == "s1"

    def test_client_server_connectivity(self):
        topo = build_three_node()
        got = []
        topo.server.stack.add_sniffer(got.append)
        topo.client.send_ip(IPPacket(src=topo.client.ip, dst=topo.server.ip,
                                     payload=UDPDatagram(sport=1, dport=2)))
        topo.run()
        assert len(got) == 1

    def test_deterministic_given_seed(self):
        a, b = build_three_node(seed=7), build_three_node(seed=7)
        assert a.sim.rng.random() == b.sim.rng.random()


class TestCensoredAS:
    def test_population_size(self):
        topo = build_censored_as(population_size=12)
        assert len(topo.population) == 12
        assert len(topo.all_clients) == 13

    def test_unique_ips(self):
        topo = build_censored_as(population_size=50)
        ips = [host.ip for host in topo.all_clients]
        assert len(set(ips)) == len(ips)

    def test_users_assigned(self):
        topo = build_censored_as(population_size=3)
        assert topo.measurement_client.user == "measurer"
        assert all(host.user for host in topo.population)

    def test_domains_cover_blocked_and_control(self):
        topo = build_censored_as()
        assert topo.domains["twitter.com"] == topo.blocked_web.ip
        assert topo.domains["example.org"] == topo.control_web.ip

    def test_cross_border_connectivity(self):
        topo = build_censored_as(population_size=2)
        got = []
        topo.dns_server.stack.add_sniffer(got.append)
        client = topo.population[0]
        client.send_ip(IPPacket(src=client.ip, dst=topo.dns_server.ip,
                                payload=UDPDatagram(sport=1, dport=9)))
        topo.run()
        assert len(got) == 1

    def test_reply_ttl_dies_inside(self):
        """A server reply with the planned TTL crosses the border router but
        never reaches the client — the paper's TTL-limiting requirement."""
        topo = build_censored_as(population_size=2)
        ttl = topo.reply_ttl_dying_inside()
        client = topo.population[0]
        at_border, at_client = [], []
        # Observe at the border via a tap.
        from repro.netsim import Action, Middlebox

        class Probe(Middlebox):
            name = "probe"
            def process(self, packet, ctx):
                if packet.udp is not None and packet.udp.dport == 7777:
                    at_border.append(packet)
                return Action.PASS

        topo.border_router.add_tap(Probe())
        client.stack.add_sniffer(
            lambda p: at_client.append(p) if p.udp and p.udp.dport == 7777 else None
        )
        reply = IPPacket(src=topo.measurement_server.ip, dst=client.ip, ttl=ttl,
                         payload=UDPDatagram(sport=80, dport=7777))
        topo.measurement_server.send_ip(reply)
        topo.run()
        assert len(at_border) == 1  # crossed the surveillance tap
        assert at_client == []      # died before the client

    def test_normal_ttl_reaches_client(self):
        topo = build_censored_as(population_size=2)
        client = topo.population[0]
        got = []
        client.stack.add_sniffer(lambda p: got.append(p) if p.udp else None)
        topo.measurement_server.send_ip(
            IPPacket(src=topo.measurement_server.ip, dst=client.ip, ttl=64,
                     payload=UDPDatagram(sport=80, dport=7777))
        )
        topo.run()
        assert len(got) == 1

    def test_sav_filter_installed_at_border(self):
        sav = SAVFilter.strict()
        topo = build_censored_as(population_size=2, sav_filter=sav)
        client = topo.population[0]
        other = topo.population[1]
        got = []
        topo.dns_server.stack.add_sniffer(got.append)
        spoofed = IPPacket(src=other.ip, dst=topo.dns_server.ip,
                           payload=UDPDatagram(sport=1, dport=9))
        client.send_raw(spoofed)
        topo.run()
        assert got == []
        assert topo.border_router.sav_drops == 1
