"""Property tests for the impairment models (hypothesis).

Invariants:

- Gilbert–Elliott's observed loss rate converges to the configured
  marginal (within the fat tolerance bursty correlation demands).
- No impairment may schedule a packet into the past: every fate delay is
  non-negative, so the engine's (time, seq) total order is preserved —
  reordering only ever *holds packets back*.
- Duplication never duplicates a dropped packet: a fate is either
  dropped with zero copies or delivered with at least one.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.impairment import (
    Duplication,
    GilbertElliottLoss,
    ImpairedPath,
    IndependentLoss,
    LatencyJitter,
    Reordering,
)


class TestGilbertElliottMarginal:
    @given(
        marginal=st.floats(min_value=0.01, max_value=0.35),
        burst=st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_configured_marginal_is_exact(self, marginal, burst):
        model = GilbertElliottLoss.from_marginal(marginal, burst)
        assert math.isclose(model.marginal_loss, marginal, rel_tol=1e-9)

    @given(
        marginal=st.floats(min_value=0.02, max_value=0.35),
        burst=st.floats(min_value=1.0, max_value=8.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_observed_loss_converges_to_marginal(self, marginal, burst, seed):
        model = GilbertElliottLoss.from_marginal(marginal, burst)
        rng = random.Random(seed)
        n = 20_000
        drops = sum(model.decide(100, 0.0, rng).drop for _ in range(n))
        observed = drops / n
        # Burst correlation inflates the variance of the sample mean by
        # roughly the mean burst length; allow a 6-sigma band on the
        # correlation-adjusted standard error plus a small absolute floor.
        sigma = math.sqrt(marginal * (1.0 - marginal) * 2.0 * burst / n)
        assert abs(observed - marginal) < 6.0 * sigma + 0.01


class TestBurstTimescaleDecay:
    """Bursts are packet-clocked under load but decay over idle time.

    Without the decay, a chain that entered a burst on an otherwise-idle
    link stays there until more packets arrive — so a backoff-spaced
    retry faces the same burst that ate the original probe, however long
    it waits (the failure mode that false-blocked whole control-domain
    batches).
    """

    def test_burst_certainly_exits_over_a_long_idle_gap(self):
        # p_enter = 0 makes the long-gap outcome deterministic: the
        # stationary burst probability is 0 and the geometric factor
        # 0.8**200 is ~1e-20, so the state must relax to good.
        model = GilbertElliottLoss(
            p_enter_burst=0.0, p_exit_burst=0.2, burst_timescale=0.02
        )
        rng = random.Random(7)
        model.decide(100, 0.0, rng)  # anchors the idle clock
        model._in_burst = True
        model.decide(100, 0.0 + 200 * 0.02, rng)
        assert model._in_burst is False

    def test_zero_timescale_freezes_the_burst(self):
        model = GilbertElliottLoss(
            p_enter_burst=0.0, p_exit_burst=0.0, burst_timescale=0.0
        )
        rng = random.Random(7)
        model.decide(100, 0.0, rng)
        model._in_burst = True
        assert model.decide(100, 1e6, rng).drop

    def test_dense_traffic_matches_the_classical_per_packet_chain(self):
        # Back-to-back packets never open an idle gap, so the default
        # timescale must reproduce the timescale=0 chain draw-for-draw.
        timed = GilbertElliottLoss.from_marginal(0.2, 4.0)
        frozen = GilbertElliottLoss.from_marginal(0.2, 4.0, burst_timescale=0.0)
        rng_a, rng_b = random.Random(11), random.Random(11)
        for _ in range(2000):
            assert (
                timed.decide(100, 0.0, rng_a).drop
                == frozen.decide(100, 0.0, rng_b).drop
            )

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_sparse_probes_see_the_marginal_not_the_burst(self, seed):
        # Probes spaced 50 timescales apart are decorrelated, so the
        # observed loss is an i.i.d. Bernoulli(marginal) sample — the
        # tight independent-sample tolerance applies, not the fat
        # burst-adjusted one.
        marginal = 0.05
        model = GilbertElliottLoss.from_marginal(marginal, 5.0)
        rng = random.Random(seed)
        n = 2000
        drops = sum(
            model.decide(100, index * 50 * model.burst_timescale, rng).drop
            for index in range(n)
        )
        sigma = math.sqrt(marginal * (1.0 - marginal) / n)
        assert abs(drops / n - marginal) < 6.0 * sigma + 0.005


def pipelines(draw):
    """A pipeline mixing loss, jitter, reordering, and duplication."""
    models = []
    if draw(st.booleans()):
        models.append(IndependentLoss(draw(st.floats(min_value=0.0, max_value=0.9))))
    if draw(st.booleans()):
        models.append(
            GilbertElliottLoss.from_marginal(
                draw(st.floats(min_value=0.0, max_value=0.4)),
                draw(st.floats(min_value=1.0, max_value=10.0)),
            )
        )
    models.append(LatencyJitter(draw(st.floats(min_value=0.0, max_value=0.05))))
    models.append(
        Reordering(
            draw(st.floats(min_value=0.0, max_value=1.0)),
            delay_range=(0.01, 0.05),
        )
    )
    models.append(
        Duplication(
            draw(st.floats(min_value=0.0, max_value=1.0)),
            copy_delay=draw(st.floats(min_value=0.0, max_value=0.01)),
        )
    )
    return models


pipeline_strategy = st.composite(pipelines)()


class TestPipelineInvariants:
    @given(models=pipeline_strategy, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_no_fate_schedules_into_the_past(self, models, seed):
        path = ImpairedPath(models, seed=seed)
        for index in range(300):
            fate = path.traverse(100 + index % 1400, now=index * 0.001)
            assert all(delay >= 0.0 for delay in fate.delays)

    @given(models=pipeline_strategy, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_dropped_packets_are_never_duplicated(self, models, seed):
        path = ImpairedPath(models, seed=seed)
        for index in range(300):
            fate = path.traverse(100, now=index * 0.001)
            if fate.dropped:
                assert fate.copies == 0
            else:
                assert fate.copies >= 1

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_certain_duplication_after_loss(self, seed):
        """With Duplication(1.0) downstream of a lossy stage, survivors
        always carry exactly one extra copy and casualties none."""
        path = ImpairedPath(
            [IndependentLoss(0.5), Duplication(1.0, copy_delay=0.001)], seed=seed
        )
        survivors = casualties = 0
        for _ in range(200):
            fate = path.traverse(100, now=0.0)
            if fate.dropped:
                casualties += 1
                assert fate.copies == 0
            else:
                survivors += 1
                assert fate.copies == 2
                # The duplicate trails the primary copy, never precedes it.
                assert fate.delays[1] >= fate.delays[0]
        assert survivors and casualties
