"""Tests for the caching recursive resolver, including poisoning persistence."""

import pytest

from repro.censor import GreatFirewall
from repro.netsim import Host, build_censored_as, resolve
from repro.netsim.resolver import CachingResolver
from repro.packets import QTYPE_A
from repro.traffic import install_standard_servers


@pytest.fixture
def world():
    """Censored AS with an in-AS caching resolver at 10.1.250.53."""
    topo = build_censored_as(seed=12, population_size=4)
    install_standard_servers(topo)
    resolver_host = topo.network.add(Host("resolver", "10.1.250.53"))
    topo.network.connect(resolver_host, topo.internal_router)
    resolver = CachingResolver(resolver_host, upstream_ip=topo.dns_server.ip)
    return topo, resolver, resolver_host


class TestResolution:
    def test_recursive_resolution(self, world):
        topo, resolver, resolver_host = world
        results = []
        resolve(topo.population[0], resolver_host.ip, "example.org",
                callback=results.append)
        topo.run()
        assert results[0].ok
        assert results[0].addresses == [topo.control_web.ip]
        assert resolver.misses == 1
        assert resolver.upstream_queries == 1

    def test_cache_hit_skips_upstream(self, world):
        topo, resolver, resolver_host = world
        for client in topo.population[:3]:
            resolve(client, resolver_host.ip, "example.org", callback=lambda r: None)
            topo.run()
        assert resolver.upstream_queries == 1
        assert resolver.hits == 2

    def test_cached_answer_peek(self, world):
        topo, resolver, resolver_host = world
        resolve(topo.population[0], resolver_host.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        cached = resolver.cached_answer("example.org", QTYPE_A)
        assert cached is not None
        assert cached.a_records() == [topo.control_web.ip]

    def test_nxdomain_negative_cached(self, world):
        topo, resolver, resolver_host = world
        results = []
        for _ in range(2):
            resolve(topo.population[0], resolver_host.ip, "missing.example",
                    callback=results.append)
            topo.run()
        assert all(r.status == "nxdomain" for r in results)
        assert resolver.upstream_queries == 1  # second served from negative cache

    def test_cache_expiry_refetches(self, world):
        topo, resolver, resolver_host = world
        resolve(topo.population[0], resolver_host.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        topo.sim.run_for(400.0)  # past the 300 s record TTL
        resolve(topo.population[0], resolver_host.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        assert resolver.upstream_queries == 2

    def test_flush(self, world):
        topo, resolver, resolver_host = world
        resolve(topo.population[0], resolver_host.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        assert resolver.flush() == 1
        assert resolver.cached_answer("example.org") is None

    def test_upstream_timeout_yields_servfail(self, world):
        topo, resolver, resolver_host = world
        # Point at a black-holed upstream; give up before the client does.
        resolver.upstream_ip = "203.0.113.254"
        resolver.upstream_timeout = 0.5
        results = []
        resolve(topo.population[0], resolver_host.ip, "example.org",
                callback=results.append)
        topo.run()
        assert results[0].status == "servfail"
        assert resolver.upstream_timeouts == 1


class TestPoisoningPersistence:
    def test_one_injection_poisons_the_whole_as(self, world):
        """The cache amplifies a single on-path injection: every client
        gets the forged answer while the censor acted exactly once."""
        topo, resolver, resolver_host = world
        gfw = GreatFirewall()
        topo.border_router.add_tap(gfw)

        results = []
        for client in topo.population:
            resolve(client, resolver_host.ip, "twitter.com", callback=results.append)
            topo.run()
        assert len(results) == len(topo.population)
        assert all(r.addresses == [gfw.policy.poison_ip] for r in results)
        # One upstream query crossed the border; one injection happened.
        assert resolver.upstream_queries == 1
        assert gfw.dns_injections == 1

    def test_client_queries_never_cross_border(self, world):
        """With an in-AS resolver, client DNS stays inside the AS — the
        border taps only ever see the resolver's traffic."""
        from repro.netsim import PacketCapture
        from repro.netsim.capture import dns_only

        topo, resolver, resolver_host = world
        capture = PacketCapture(predicate=dns_only)
        topo.border_router.add_tap(capture)
        resolve(topo.population[0], resolver_host.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        sources = {cap.packet.src for cap in capture.packets}
        assert topo.population[0].ip not in sources
        assert resolver_host.ip in sources
