"""Seed-determinism regression under impairment.

The engine's claim — same seed, same run — must survive the impairment
subsystem: per-link RNG substreams may not consume or perturb the
simulator's own RNG.  These tests run the Figure-1 end-to-end scenario
twice under 5% burst loss plus jitter and demand byte-identical packet
traces and identical verdicts.
"""

from repro.censor import CensorshipPolicy, GreatFirewall
from repro.core import (
    MeasurementContext,
    RetryPolicy,
    ScanMeasurement,
    ScanTarget,
)
from repro.netsim import (
    PacketCapture,
    WebServer,
    build_three_node,
    burst_loss_profile,
)

VARIABLES = {"HOME_NET": "10.0.0.0/24", "EXTERNAL_NET": "any"}


def run_impaired_figure1(seed: int, censored: bool = True):
    """One full Figure-1 scan under burst loss; returns (trace, verdicts)."""
    topo = build_three_node(seed=seed)
    topo.client.user = "tester"
    policy = CensorshipPolicy() if censored else CensorshipPolicy.disabled()
    censor = GreatFirewall(policy=policy, variables=VARIABLES)
    capture = PacketCapture()
    topo.switch.add_tap(capture)
    topo.switch.add_tap(censor)
    WebServer(topo.server, default_body="<html>served content</html>")
    if censored:
        censor.policy.blocked_ips.add(topo.server.ip)
    topo.network.impair_all_links(
        burst_loss_profile(marginal=0.05, mean_burst_length=5.0, jitter=0.002)
    )
    ctx = MeasurementContext(
        client=topo.client,
        retry_policy=RetryPolicy(max_attempts=3, timeout=1.0),
    )
    technique = ScanMeasurement(
        ctx, [ScanTarget(topo.server.ip, [80], "server")], port_count=25,
        timeout=1.0,
    )
    technique.start()
    topo.sim.run(until=topo.sim.now + 60.0)
    trace = capture.text_log()
    verdicts = [
        (r.target, r.verdict.value, r.detail, r.attempts, round(r.time, 9))
        for r in technique.results
    ]
    lost = sum(link.packets_lost for link in topo.network.links)
    return trace, verdicts, lost


class TestSeedDeterminism:
    def test_same_seed_gives_byte_identical_trace(self):
        first_trace, first_verdicts, first_lost = run_impaired_figure1(seed=13)
        second_trace, second_verdicts, second_lost = run_impaired_figure1(seed=13)
        # The impairment actually bit — this is not a trivially clean run.
        assert first_lost > 0
        assert first_trace.encode() == second_trace.encode()
        assert first_verdicts == second_verdicts
        assert first_lost == second_lost

    def test_different_seed_gives_different_trace(self):
        """Sanity: the trace equality above is not vacuous."""
        trace_a, _, _ = run_impaired_figure1(seed=13)
        trace_b, _, _ = run_impaired_figure1(seed=14)
        assert trace_a != trace_b

    def test_uncensored_run_also_deterministic(self):
        first = run_impaired_figure1(seed=7, censored=False)
        second = run_impaired_figure1(seed=7, censored=False)
        assert first == second
