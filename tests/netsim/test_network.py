"""Unit tests for the network graph, routing, taps, and TTL handling."""

import pytest

from repro.netsim import Action, Host, Middlebox, Network, Router, Simulator, Switch
from repro.packets import ICMP_TIME_EXCEEDED, IPPacket, SYN, TCPSegment, UDPDatagram


def linear_network(router_count=1, latency=0.001):
    """a — r1 — ... — rN — b"""
    sim = Simulator(seed=0)
    net = Network(sim, default_latency=latency)
    a = net.add(Host("a", "10.0.0.1"))
    b = net.add(Host("b", "10.0.0.2"))
    routers = [net.add(Router(f"r{i}")) for i in range(router_count)]
    chain = [a] + routers + [b]
    for left, right in zip(chain, chain[1:]):
        net.connect(left, right)
    return sim, net, a, b, routers


class TestTopologyConstruction:
    def test_duplicate_node_name_rejected(self):
        net = Network(Simulator())
        net.add(Host("a", "10.0.0.1"))
        with pytest.raises(ValueError):
            net.add(Host("a", "10.0.0.2"))

    def test_duplicate_ip_rejected(self):
        net = Network(Simulator())
        net.add(Host("a", "10.0.0.1"))
        with pytest.raises(ValueError):
            net.add(Host("b", "10.0.0.1"))

    def test_connect_unattached_node_rejected(self):
        net = Network(Simulator())
        a = net.add(Host("a", "10.0.0.1"))
        stray = Host("stray", "10.0.0.9")
        with pytest.raises(ValueError):
            net.connect(a, stray)

    def test_host_lookup(self):
        net = Network(Simulator())
        a = net.add(Host("a", "10.0.0.1"))
        assert net.host("a") is a
        with pytest.raises(KeyError):
            net.host("nope")

    def test_owner_of(self):
        net = Network(Simulator())
        a = net.add(Host("a", "10.0.0.1"))
        assert net.owner_of("10.0.0.1") is a
        assert net.owner_of("9.9.9.9") is None


class TestForwarding:
    def test_delivery_across_switch(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add(Host("a", "10.0.0.1"))
        b = net.add(Host("b", "10.0.0.2"))
        s = net.add(Switch("s"))
        net.connect(a, s)
        net.connect(s, b)
        received = []
        b.stack.add_sniffer(received.append)
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, payload=UDPDatagram(sport=1, dport=9)))
        sim.run()
        assert len(received) >= 1
        assert received[0].udp.dport == 9

    def test_unroutable_destination_dropped(self):
        sim, net, a, b, _ = linear_network()
        a.send_ip(IPPacket(src=a.ip, dst="203.0.113.99",
                           payload=UDPDatagram(sport=1, dport=2)))
        sim.run()
        assert net.dropped_no_route == 1

    def test_latency_accumulates_per_hop(self):
        sim, net, a, b, _ = linear_network(router_count=2, latency=0.01)
        arrival = []
        b.stack.add_sniffer(lambda p: arrival.append(sim.now))
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, payload=UDPDatagram(sport=1, dport=9)))
        sim.run()
        # 3 links of 10 ms each.
        assert arrival and abs(arrival[0] - 0.03) < 1e-9

    def test_link_byte_accounting(self):
        sim, net, a, b, _ = linear_network()
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, payload=UDPDatagram(sport=1, dport=2, payload=b"x" * 100)))
        sim.run()
        assert net.total_packets_carried() >= 2  # both links
        assert net.total_bytes_carried() > 200


class TestTTL:
    def test_switch_does_not_decrement(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add(Host("a", "10.0.0.1"))
        b = net.add(Host("b", "10.0.0.2"))
        s = net.add(Switch("s"))
        net.connect(a, s)
        net.connect(s, b)
        seen = []
        b.stack.add_sniffer(lambda p: seen.append(p.ttl))
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, ttl=10, payload=UDPDatagram(sport=1, dport=2)))
        sim.run()
        assert seen == [10]

    def test_router_decrements(self):
        sim, net, a, b, _ = linear_network(router_count=3)
        seen = []
        b.stack.add_sniffer(lambda p: seen.append(p.ttl))
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, ttl=10, payload=UDPDatagram(sport=1, dport=2)))
        sim.run()
        assert seen == [7]

    def test_ttl_expiry_drops_and_sends_time_exceeded(self):
        sim, net, a, b, routers = linear_network(router_count=3)
        delivered = []
        b.stack.add_sniffer(delivered.append)
        errors = []
        a.stack.add_sniffer(
            lambda p: errors.append(p) if p.icmp is not None else None
        )
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, ttl=2, payload=UDPDatagram(sport=7, dport=2)))
        sim.run()
        assert delivered == []
        assert routers[1].ttl_drops == 1
        assert errors and errors[0].icmp.icmp_type == ICMP_TIME_EXCEEDED

    def test_time_exceeded_can_be_disabled(self):
        sim = Simulator()
        net = Network(sim)
        a = net.add(Host("a", "10.0.0.1"))
        b = net.add(Host("b", "10.0.0.2"))
        r = net.add(Router("r", send_time_exceeded=False))
        net.connect(a, r)
        net.connect(r, b)
        icmp_seen = []
        a.stack.add_sniffer(lambda p: icmp_seen.append(p) if p.icmp else None)
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, ttl=1, payload=UDPDatagram(sport=1, dport=2)))
        sim.run()
        assert icmp_seen == []


class _CountingTap(Middlebox):
    name = "counter"

    def __init__(self, action=Action.PASS):
        self.seen = []
        self.action = action

    def process(self, packet, ctx):
        self.seen.append(packet)
        return self.action


class _InjectingTap(Middlebox):
    name = "injector"

    def __init__(self, reply_to):
        self.reply_to = reply_to

    def process(self, packet, ctx):
        if packet.udp is not None and packet.metadata.get("injected_by") != self.name:
            ctx.inject(
                IPPacket(src=packet.dst, dst=packet.src,
                         payload=UDPDatagram(sport=99, dport=packet.udp.sport)),
                tag=self.name,
            )
        return Action.PASS


class TestTaps:
    def _net_with_tap(self, tap):
        sim = Simulator()
        net = Network(sim)
        a = net.add(Host("a", "10.0.0.1"))
        b = net.add(Host("b", "10.0.0.2"))
        s = net.add(Switch("s"))
        s.add_tap(tap)
        net.connect(a, s)
        net.connect(s, b)
        return sim, net, a, b

    def test_tap_sees_transiting_packets(self):
        tap = _CountingTap()
        sim, net, a, b = self._net_with_tap(tap)
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, payload=UDPDatagram(sport=1, dport=2)))
        sim.run()
        # The datagram transits, and so does the ICMP port-unreachable reply.
        udp_seen = [p for p in tap.seen if p.udp is not None]
        assert len(udp_seen) == 1

    def test_dropping_tap_blocks_delivery(self):
        tap = _CountingTap(action=Action.DROP)
        sim, net, a, b = self._net_with_tap(tap)
        got = []
        b.stack.add_sniffer(got.append)
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, payload=UDPDatagram(sport=1, dport=2)))
        sim.run()
        assert got == []

    def test_injected_packet_not_reprocessed_by_injector(self):
        tap = _InjectingTap(reply_to="10.0.0.1")
        sim, net, a, b = self._net_with_tap(tap)
        replies = []
        a.stack.add_sniffer(lambda p: replies.append(p) if p.udp else None)
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, payload=UDPDatagram(sport=5, dport=2)))
        sim.run()
        # Exactly one injected reply: the tap skipped its own injection.
        assert len([p for p in replies if p.udp.sport == 99]) == 1

    def test_tap_order_is_attachment_order(self):
        first, second = _CountingTap(), _CountingTap(action=Action.DROP)
        sim = Simulator()
        net = Network(sim)
        a = net.add(Host("a", "10.0.0.1"))
        b = net.add(Host("b", "10.0.0.2"))
        s = net.add(Switch("s"))
        s.add_tap(first)
        s.add_tap(second)
        net.connect(a, s)
        net.connect(s, b)
        a.send_ip(IPPacket(src=a.ip, dst=b.ip, payload=UDPDatagram(sport=1, dport=2)))
        sim.run()
        assert len(first.seen) == 1 and len(second.seen) == 1
