"""Tiered-fidelity flow layer: tier decisions, prefix routing, conservation.

The fidelity boundary rests on three substrate guarantees tested here:
``path_crosses_tap`` answers from the routed path and current tap
placement (cache included), prefix routing delivers synthetic user
addresses without per-user hosts, and aggregate accounting preserves the
link conservation invariant packet forwarding already maintains.
"""

import pytest

from repro.netsim import (
    AggregateFlow,
    FlowFidelityEngine,
    Host,
    Network,
    PacketCapture,
    Simulator,
    build_censored_as,
)


def line_network():
    """a -- b -- c with every node attached and routed."""
    sim = Simulator(seed=1)
    net = Network(sim)
    a = net.add(Host("a", "10.0.0.1"))
    b = net.add(Host("b", "10.0.0.2"))
    c = net.add(Host("c", "10.0.0.3"))
    net.connect(a, b)
    net.connect(b, c)
    return sim, net, a, b, c


def aggregate_flow(**overrides):
    params = dict(
        flow_id=1, kind="web", src_ip="10.128.0.2", dst_ip="10.224.10.10",
        src_gateway="a", dst_gateway="c", duration=0.5,
        packets_up=10, bytes_up=1_000, packets_down=20, bytes_down=20_000,
        template=None, params=(),
    )
    params.update(overrides)
    return AggregateFlow(**params)


class TestAtUncancellable:
    def test_fires_at_the_scheduled_time(self):
        sim = Simulator(seed=0)
        fired = []
        sim.at_uncancellable(0.25, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.25]

    def test_same_time_events_fire_in_scheduling_order(self):
        """Uncancellable events share the sequence counter with timers, so
        mixing the two at one timestamp preserves submission order."""
        sim = Simulator(seed=0)
        order = []
        sim.at(0.1, lambda: order.append("timer-1"))
        sim.at_uncancellable(0.1, lambda: order.append("flow-1"))
        sim.at(0.1, lambda: order.append("timer-2"))
        sim.at_uncancellable(0.1, lambda: order.append("flow-2"))
        sim.run()
        assert order == ["timer-1", "flow-1", "timer-2", "flow-2"]

    def test_survives_heap_compaction_of_cancelled_timers(self):
        """Compaction sweeps dead Timer entries; the timer-less flow
        entries must ride it out untouched."""
        sim = Simulator(seed=0)
        fired = []
        timers = [sim.at(1.0 + i * 0.001, lambda: fired.append("t"))
                  for i in range(600)]
        for i in range(100):
            sim.at_uncancellable(0.5 + i * 0.001, lambda: fired.append("u"))
        for timer in timers:
            timer.cancel()
        # cancelling en masse triggers compaction with None-timer entries
        # interleaved in the heap
        sim.run()
        assert fired == ["u"] * 100


class TestPrefixRouting:
    def test_prefix_delivers_to_gateway(self):
        _sim, net, a, _b, _c = line_network()
        net.add_prefix_route("10.128.0.0/11", a)
        assert net.owner_of("10.128.0.2") is a
        assert net.owner_of("10.159.255.254") is a
        assert net.owner_of("10.160.0.1") is None

    def test_exact_host_ip_wins_over_prefix(self):
        _sim, net, a, b, _c = line_network()
        net.add_prefix_route("10.0.0.0/8", a)
        assert net.owner_of("10.0.0.2") is b  # b's own address, not the route
        assert net.owner_of("10.7.7.7") is a

    def test_longest_prefix_wins(self):
        _sim, net, a, b, _c = line_network()
        net.add_prefix_route("10.128.0.0/11", a)
        net.add_prefix_route("10.128.1.0/24", b)
        assert net.owner_of("10.128.1.5") is b
        assert net.owner_of("10.128.2.5") is a

    def test_cached_answers_refresh_when_routes_are_added(self):
        _sim, net, a, b, _c = line_network()
        net.add_prefix_route("10.128.0.0/11", a)
        assert net.owner_of("10.128.1.5") is a  # warms the cache
        net.add_prefix_route("10.128.1.0/24", b)
        assert net.owner_of("10.128.1.5") is b

    def test_host_bits_in_prefix_rejected(self):
        _sim, net, a, _b, _c = line_network()
        with pytest.raises(ValueError, match="host bits"):
            net.add_prefix_route("10.128.1.0/11", a)

    def test_non_cidr_rejected(self):
        _sim, net, a, _b, _c = line_network()
        with pytest.raises(ValueError, match="CIDR"):
            net.add_prefix_route("10.128.0.0", a)

    def test_unattached_gateway_rejected(self):
        _sim, net, _a, _b, _c = line_network()
        stray = Host("stray", "192.0.2.1")
        with pytest.raises(ValueError, match="not attached"):
            net.add_prefix_route("10.128.0.0/11", stray)


class TestTapReachability:
    def test_tap_free_path_does_not_cross(self):
        topo = build_censored_as(seed=2)
        net = topo.network
        assert not net.path_crosses_tap("access", "internal")
        assert not net.path_crosses_tap("access", "transit")

    def test_tap_on_path_detected(self):
        topo = build_censored_as(seed=2)
        topo.border_router.add_tap(PacketCapture())
        net = topo.network
        assert net.path_crosses_tap("access", "transit")
        assert net.path_crosses_tap("internal", "transit")
        # paths that stop short of the border stay unobserved
        assert not net.path_crosses_tap("access", "internal")

    def test_cache_invalidated_by_tap_attachment(self):
        """The answer must track tap placement even after being cached."""
        topo = build_censored_as(seed=2)
        net = topo.network
        assert not net.path_crosses_tap("access", "transit")  # cached False
        topo.border_router.add_tap(PacketCapture())
        assert net.path_crosses_tap("access", "transit")


class TestFidelityTiers:
    def test_mode_forces_tier(self):
        topo = build_censored_as(seed=2)
        topo.border_router.add_tap(PacketCapture())
        flow = aggregate_flow(src_gateway="access", dst_gateway="transit")
        assert FlowFidelityEngine(topo.network, "full").tier_of(flow) == "expanded"
        assert FlowFidelityEngine(topo.network, "aggregate").tier_of(flow) == "aggregate"

    def test_hybrid_tier_follows_tap_reachability(self):
        topo = build_censored_as(seed=2)
        topo.border_router.add_tap(PacketCapture())
        engine = FlowFidelityEngine(topo.network, "hybrid")
        crossing = aggregate_flow(src_gateway="access", dst_gateway="transit")
        internal = aggregate_flow(src_gateway="access", dst_gateway="internal")
        assert engine.tier_of(crossing) == "expanded"
        assert engine.tier_of(internal) == "aggregate"

    def test_bad_mode_rejected(self):
        topo = build_censored_as(seed=2)
        with pytest.raises(ValueError, match="fidelity mode"):
            FlowFidelityEngine(topo.network, "cinematic")


class TestAggregateAccounting:
    def test_every_path_link_charged_both_directions(self):
        sim, net, _a, _b, _c = line_network()
        engine = FlowFidelityEngine(net, "aggregate")
        flow = aggregate_flow()
        engine.submit(flow)
        sim.run()
        path = net.path_nodes("a", "c")
        for near, far in zip(path, path[1:]):
            link = net._find_link(near, far)
            forward = link.direction_from(net.nodes[near])
            reverse = "ba" if forward == "ab" else "ab"
            for direction, packets, size in (
                (forward, 10, 1_000),
                (reverse, 20, 20_000),
            ):
                stats = link.stats[direction]
                assert stats.packets_offered == packets
                assert stats.packets_carried == packets
                assert stats.bytes_carried == size
                assert stats.conserved

    def test_accounting_lands_at_flow_completion_time(self):
        sim, net, _a, _b, _c = line_network()
        engine = FlowFidelityEngine(net, "aggregate")
        engine.submit(aggregate_flow(duration=0.5))
        sim.run(until=0.4)
        assert net.links[0].stats["ab"].packets_offered == 0
        sim.run()
        assert net.links[0].stats["ab"].packets_offered == 10

    def test_ledger_counts_both_tiers(self):
        sim, net, _a, _b, _c = line_network()
        engine = FlowFidelityEngine(net, "aggregate")
        engine.submit(aggregate_flow(flow_id=1))
        engine.submit(aggregate_flow(flow_id=2))
        sim.run()
        stats = engine.stats()
        assert stats["flows_aggregate"] == 2
        assert stats["flows_expanded"] == 0
        assert stats["bytes_aggregate"] == 2 * 21_000
        assert engine.bytes_total == 2 * 21_000
