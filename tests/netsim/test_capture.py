"""Unit tests for the packet-capture tap."""

import pytest

from repro.netsim import PacketCapture, build_censored_as, http_get, resolve
from repro.netsim.capture import dns_only, tcp_only
from repro.packets import PROTO_TCP, PROTO_UDP
from repro.traffic import install_standard_servers


@pytest.fixture
def world():
    topo = build_censored_as(seed=8, population_size=3)
    capture = PacketCapture()
    topo.border_router.add_tap(capture)
    install_standard_servers(topo)
    return topo, capture


class TestCapture:
    def test_captures_transiting_traffic(self, world):
        topo, capture = world
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        assert len(capture) >= 2  # query + response
        assert capture.total_bytes() > 0

    def test_timestamps_monotonic(self, world):
        topo, capture = world
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 callback=lambda r: None)
        topo.run()
        times = [cap.time for cap in capture.packets]
        assert times == sorted(times)

    def test_predicate_filters(self, world):
        topo, capture = world
        dns_capture = PacketCapture(predicate=dns_only)
        topo.border_router.add_tap(dns_capture)
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 callback=lambda r: None)
        topo.run()
        assert len(dns_capture) >= 2
        assert all(cap.packet.udp is not None for cap in dns_capture.packets)
        assert len(dns_capture) < len(capture)

    def test_involving_and_protocol_queries(self, world):
        topo, capture = world
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 callback=lambda r: None)
        topo.run()
        mine = capture.involving(topo.measurement_client.ip)
        assert mine
        assert all(
            topo.measurement_client.ip in (c.packet.src, c.packet.dst) for c in mine
        )
        assert capture.by_protocol(PROTO_TCP)

    def test_between_window(self, world):
        topo, capture = world
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        all_window = capture.between(0.0, 1e9)
        assert len(all_window) == len(capture)
        assert capture.between(1e8, 1e9) == []

    def test_ring_buffer_overflow(self, world):
        topo, _ = world
        small = PacketCapture(max_packets=1)
        topo.border_router.add_tap(small)
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        assert len(small) == 1
        assert small.dropped_overflow >= 1

    def test_text_log_and_clear(self, world):
        topo, capture = world
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        log = capture.text_log(limit=1)
        assert "border" in log
        assert "more packets" in log
        capture.clear()
        assert len(capture) == 0

    def test_protocol_mix(self, world):
        topo, capture = world
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 callback=lambda r: None)
        topo.run()
        mix = capture.protocol_mix()
        assert mix.get("udp", 0) > 0
        assert mix.get("tcp", 0) > 0

    def test_tcp_only_predicate(self):
        from repro.packets import IPPacket, TCPSegment, UDPDatagram, SYN

        tcp = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                       payload=TCPSegment(sport=1, dport=2, flags=SYN))
        udp = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                       payload=UDPDatagram(sport=1, dport=53))
        assert tcp_only(tcp) and not tcp_only(udp)
        assert dns_only(udp) and not dns_only(tcp)


class TestRingMode:
    def _world_with(self, capture):
        topo = build_censored_as(seed=8, population_size=3)
        topo.border_router.add_tap(capture)
        install_standard_servers(topo)
        return topo

    def test_ring_keeps_newest_default_keeps_oldest(self):
        ring = PacketCapture(max_packets=2, ring=True)
        plain = PacketCapture(max_packets=2)
        reference = PacketCapture()
        topo = self._world_with(ring)
        topo.border_router.add_tap(plain)
        topo.border_router.add_tap(reference)
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 callback=lambda r: None)
        topo.run()
        everything = [cap.time for cap in reference.packets]
        assert len(everything) > 2
        assert [cap.time for cap in plain.packets] == everything[:2]
        assert [cap.time for cap in ring.packets] == everything[-2:]
        overflow = len(everything) - 2
        assert ring.dropped_overflow == overflow
        assert plain.dropped_overflow == overflow

    def test_text_log_header_names_mode(self):
        ring = PacketCapture(max_packets=1, ring=True)
        topo = self._world_with(ring)
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        log = ring.text_log()
        assert log.startswith("#")
        assert "newest kept (ring)" in log
        assert f"max_packets={ring.max_packets}" in log

    def test_text_log_has_no_header_without_overflow(self):
        capture = PacketCapture()
        topo = self._world_with(capture)
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        assert not capture.text_log().startswith("#")

    def test_clear_resets_overflow_counter(self):
        ring = PacketCapture(max_packets=1, ring=True)
        topo = self._world_with(ring)
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        assert ring.dropped_overflow > 0
        ring.clear()
        assert ring.dropped_overflow == 0
        assert len(ring) == 0


class TestJsonlExport:
    def test_to_jsonl_round_trips_capture(self, tmp_path, world):
        import json

        topo, capture = world
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=lambda r: None)
        topo.run()
        path = capture.to_jsonl(str(tmp_path / "cap.jsonl"))
        records = [json.loads(line) for line in open(path)]
        assert len(records) == len(capture)
        for record, cap in zip(records, capture.packets):
            assert record["time"] == cap.time
            assert record["src"] == cap.packet.src
            assert record["size"] == cap.size
            assert bytes.fromhex(record["raw"]) == cap.raw
