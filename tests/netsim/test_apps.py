"""Unit tests for the DNS/HTTP/SMTP application servers and clients."""

import pytest

from repro.netsim import (
    DNSServer,
    Host,
    MailServer,
    Network,
    Simulator,
    WebServer,
    Zone,
    build_three_node,
    http_get,
    resolve,
    send_mail,
)
from repro.netsim.impairment import Decision, ImpairmentModel
from repro.packets import EmailMessage, QTYPE_A, QTYPE_MX


@pytest.fixture
def topo():
    return build_three_node(seed=5)


class TestZone:
    def test_lookup_a(self):
        zone = Zone().add_a("example.com", "1.2.3.4")
        records = zone.lookup("example.com", QTYPE_A)
        assert [str(r.data) for r in records] == ["1.2.3.4"]

    def test_lookup_case_insensitive(self):
        zone = Zone().add_a("Example.COM", "1.2.3.4")
        assert zone.lookup("example.com", QTYPE_A)

    def test_cname_followed_for_a(self):
        zone = Zone().add_cname("www.example.com", "example.com").add_a("example.com", "1.2.3.4")
        records = zone.lookup("www.example.com", QTYPE_A)
        datas = [str(r.data) for r in records]
        assert "1.2.3.4" in datas

    def test_knows(self):
        zone = Zone().add_mx("example.com", "mail.example.com")
        assert zone.knows("example.com")
        assert not zone.knows("other.com")

    def test_names(self):
        zone = Zone().add_a("b.com", "1.1.1.1").add_a("a.com", "2.2.2.2")
        assert zone.names() == ["a.com", "b.com"]


class TestDNSServer:
    def test_a_resolution(self, topo):
        DNSServer(topo.server, Zone().add_a("example.com", "9.9.9.9"))
        results = []
        resolve(topo.client, topo.server.ip, "example.com", callback=results.append)
        topo.run()
        assert results[0].status == "ok"
        assert results[0].addresses == ["9.9.9.9"]

    def test_mx_resolution(self, topo):
        DNSServer(topo.server, Zone().add_mx("example.com", "mail.example.com", preference=5))
        results = []
        resolve(topo.client, topo.server.ip, "example.com", qtype=QTYPE_MX,
                callback=results.append)
        topo.run()
        assert results[0].mx == [(5, "mail.example.com")]

    def test_nxdomain(self, topo):
        DNSServer(topo.server, Zone().add_a("example.com", "9.9.9.9"))
        results = []
        resolve(topo.client, topo.server.ip, "missing.example", callback=results.append)
        topo.run()
        assert results[0].status == "nxdomain"

    def test_nodata_for_known_name_wrong_type(self, topo):
        DNSServer(topo.server, Zone().add_a("example.com", "9.9.9.9"))
        results = []
        resolve(topo.client, topo.server.ip, "example.com", qtype=QTYPE_MX,
                callback=results.append)
        topo.run()
        assert results[0].status == "nodata"

    def test_timeout_when_no_server(self, topo):
        results = []
        resolve(topo.client, topo.server.ip, "example.com", callback=results.append,
                timeout=0.5)
        topo.run()
        # No DNS server bound: closed UDP port -> ICMP unreachable -> timeout
        assert results[0].status == "timeout"

    def test_query_counter(self, topo):
        server = DNSServer(topo.server, Zone().add_a("e.com", "1.1.1.1"))
        for _ in range(3):
            resolve(topo.client, topo.server.ip, "e.com", callback=lambda r: None)
        topo.run()
        assert server.queries_served == 3


class _DropFirst(ImpairmentModel):
    """Deterministically drop the first ``count`` packets, pass the rest."""

    def __init__(self, count):
        self.count = count

    def decide(self, size, now, rng):
        if self.count > 0:
            self.count -= 1
            return Decision(drop=True)
        return Decision()


class TestResolverRetransmission:
    """A stub resolver re-sends lost queries; one dropped datagram must
    not surface as a lookup timeout (which the techniques would read as
    censorship)."""

    def _pair(self):
        sim = Simulator(seed=8)
        net = Network(sim)
        client = net.add(Host("client", "10.0.0.1"))
        server = net.add(Host("server", "10.0.0.2"))
        link = net.connect(client, server, latency=0.005)
        return sim, link, client, server

    def test_lost_query_is_retransmitted(self):
        sim, link, client, server = self._pair()
        dns = DNSServer(server, Zone().add_a("e.com", "1.1.1.1"))
        link.impair([_DropFirst(1)], direction=link.direction_from(client))
        results = []
        resolve(client, server.ip, "e.com", callback=results.append, timeout=3.0)
        sim.run(until=10.0)
        assert results[0].status == "ok"
        assert results[0].addresses == ["1.1.1.1"]
        assert dns.queries_served == 1  # only the retransmitted try arrived

    def test_exhausted_retries_stay_within_the_timeout_budget(self):
        sim, link, client, server = self._pair()
        DNSServer(server, Zone().add_a("e.com", "1.1.1.1"))
        link.impair([_DropFirst(100)], direction=link.direction_from(client))
        done_at = []

        def record(result):
            done_at.append((sim.now, result.status))

        resolve(client, server.ip, "e.com", callback=record, timeout=3.0, retries=2)
        sim.run(until=10.0)
        # The budget is split across tries, not multiplied by them.
        assert done_at == [(pytest.approx(3.0), "timeout")]

    def test_zero_retries_restores_the_single_shot_lookup(self):
        sim, link, client, server = self._pair()
        dns = DNSServer(server, Zone().add_a("e.com", "1.1.1.1"))
        link.impair([_DropFirst(1)], direction=link.direction_from(client))
        results = []
        resolve(client, server.ip, "e.com", callback=results.append,
                timeout=1.0, retries=0)
        sim.run(until=10.0)
        assert results[0].status == "timeout"
        assert dns.queries_served == 0


class TestWebServer:
    def test_get_default_page(self, topo):
        WebServer(topo.server, default_body="<html>default</html>")
        results = []
        http_get(topo.client, topo.server.ip, "example.com", "/", callback=results.append)
        topo.run()
        assert results[0].ok
        assert b"default" in results[0].response.body

    def test_get_specific_page(self, topo):
        server = WebServer(topo.server)
        server.add_page("/about", "<html>about us</html>")
        results = []
        http_get(topo.client, topo.server.ip, "example.com", "/about",
                 callback=results.append)
        topo.run()
        assert b"about us" in results[0].response.body

    def test_request_log_and_counter(self, topo):
        server = WebServer(topo.server)
        http_get(topo.client, topo.server.ip, "h.com", "/x", callback=lambda r: None)
        topo.run()
        assert server.requests_served == 1
        assert server.request_log[0].path == "/x"
        assert server.request_log[0].host == "h.com"

    def test_timeout_against_dead_ip(self, topo):
        results = []
        http_get(topo.client, "203.0.113.250", "dead.com", callback=results.append,
                 timeout=0.5)
        topo.run()
        assert results[0].status == "timeout"

    def test_elapsed_recorded(self, topo):
        WebServer(topo.server)
        results = []
        http_get(topo.client, topo.server.ip, "h.com", callback=results.append)
        topo.run()
        assert results[0].elapsed > 0


class TestMailServer:
    def test_delivery(self, topo):
        server = MailServer(topo.server)
        message = EmailMessage("a@b.com", "c@d.com", "subject", "body text")
        results = []
        send_mail(topo.client, topo.server.ip, message, callback=results.append)
        topo.run()
        assert results[0].status == "delivered"
        assert len(server.mailbox) == 1
        assert server.mailbox[0].subject == "subject"
        assert server.mailbox[0].body == "body text"

    def test_delivery_stages_recorded(self, topo):
        MailServer(topo.server)
        results = []
        send_mail(topo.client, topo.server.ip,
                  EmailMessage("a@b.com", "c@d.com", "s", "b"), callback=results.append)
        topo.run()
        assert results[0].stage == "quit"
        codes = [r.code for r in results[0].replies]
        assert 220 in codes and 354 in codes and 221 in codes

    def test_timeout_against_dead_ip(self, topo):
        results = []
        send_mail(topo.client, "203.0.113.250",
                  EmailMessage("a@b.com", "c@d.com", "s", "b"),
                  callback=results.append, timeout=0.5)
        topo.run()
        assert results[0].status == "timeout"
        assert results[0].stage == "connect"

    def test_session_counter(self, topo):
        server = MailServer(topo.server)
        for _ in range(2):
            send_mail(topo.client, topo.server.ip,
                      EmailMessage("a@b.com", "c@d.com", "s", "b"), callback=lambda r: None)
        topo.run()
        assert server.sessions == 2
