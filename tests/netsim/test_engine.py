"""Unit tests for the discrete-event engine."""

import pytest

from repro.netsim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(2.0, lambda: order.append("b"))
        sim.at(1.0, lambda: order.append("a"))
        sim.at(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.at(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.at(-0.1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        def outer():
            seen.append(("outer", sim.now))
            sim.at(1.0, lambda: seen.append(("inner", sim.now)))
        sim.at(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_for_advances_relative(self):
        sim = Simulator()
        sim.at(1.0, lambda: None)
        sim.run_for(3.0)
        assert sim.now == 3.0
        sim.run_for(2.0)
        assert sim.now == 5.0

    def test_max_events_guard(self):
        sim = Simulator()
        def loop():
            sim.at(0.0, loop)
        sim.at(0.0, loop)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.at(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestTimers:
    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        fired = []
        timer = sim.at(1.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        timer = sim.at(1.0, lambda: None)
        sim.run()
        timer.cancel()  # must not raise


class TestDeterminism:
    def test_same_seed_same_randoms(self):
        a, b = Simulator(seed=9), Simulator(seed=9)
        assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]

    def test_different_seed_differs(self):
        a, b = Simulator(seed=1), Simulator(seed=2)
        assert a.rng.random() != b.rng.random()


class TestHeapCompaction:
    def test_pending_counts_only_live_events(self):
        sim = Simulator()
        timers = [sim.at(1.0, lambda: None) for _ in range(10)]
        assert sim.pending == 10
        for timer in timers[:4]:
            timer.cancel()
        assert sim.pending == 6
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 6

    def test_double_cancel_counted_once(self):
        sim = Simulator()
        timer = sim.at(1.0, lambda: None)
        sim.at(1.0, lambda: None)
        timer.cancel()
        timer.cancel()
        assert sim.pending == 1

    def test_compaction_removes_cancelled_entries(self):
        sim = Simulator()
        keep = [sim.at(2.0, lambda: None) for _ in range(10)]
        doomed = [sim.at(1.0, lambda: None) for _ in range(200)]
        for timer in doomed:
            timer.cancel()
        # Mostly-dead heap must have been compacted away.
        assert len(sim._queue) < 64
        assert sim.pending == len(keep)
        assert sim.run() == 10

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        order = []
        expected = []
        doomed = []
        for i in range(300):
            if i % 3 == 0:
                sim.at(float(i), lambda i=i: order.append(i))
                expected.append(i)
            else:
                doomed.append(sim.at(float(i), lambda i=i: order.append(i)))
        for timer in doomed:
            timer.cancel()
        sim.run()
        assert order == expected


class TestStats:
    def test_stats_shape_and_counts(self):
        sim = Simulator()
        for i in range(5):
            sim.at(float(i), lambda: None)
        cancelled = sim.at(10.0, lambda: None)
        cancelled.cancel()
        sim.run()
        stats = sim.stats()
        assert stats["events_fired"] == 5
        assert stats["timers_cancelled"] == 1
        assert stats["queue_depth_high_water"] == 6
        assert stats["pending"] == 0
        assert stats["now"] == 4.0  # the cancelled entry never advances time

    def test_compaction_triggers_under_mass_cancellation(self):
        sim = Simulator()
        keep = [sim.at(2.0, lambda: None) for _ in range(10)]
        doomed = [sim.at(1.0, lambda: None) for _ in range(500)]
        for timer in doomed:
            timer.cancel()
        stats = sim.stats()
        assert stats["heap_compactions"] >= 1
        assert stats["timers_cancelled"] == 500
        # Compaction physically shrank the heap below the dead-entry count.
        assert len(sim._queue) < len(doomed)
        assert stats["queue_depth_high_water"] == len(keep) + len(doomed)
        assert sim.pending == len(keep)

    def test_stats_survive_compaction_accounting(self):
        sim = Simulator()
        fired = []
        for i in range(100):
            sim.at(float(i), lambda i=i: fired.append(i))
        doomed = [sim.at(1000.0, lambda: None) for _ in range(400)]
        for timer in doomed:
            timer.cancel()
        sim.run()
        stats = sim.stats()
        assert len(fired) == 100
        assert stats["events_fired"] == 100
        assert stats["timers_cancelled"] == 400
