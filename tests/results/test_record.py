"""Record sink: row construction, byte-stable rendering, the reader."""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.results import (
    RECORD_SCHEMA,
    ROW_FIELDS,
    iter_rows,
    read_header,
    rows_from_point,
    summarize_rows,
    write_records,
)

HASH = "cafe0123cafe0123"


def point_dict(index=0, **overrides):
    params = dict(index=index, seed=3, technique="scan",
                  topology="censored-as", loss=0.05, retry="retry-3")
    params.update(overrides)
    return params


def result_dict(target="facebook.com", verdict="blocked_rst", **overrides):
    params = dict(target=target, verdict=verdict, detail="RST on SYN",
                  time=1.25, samples=4, attempts=2, confidence=0.75)
    params.update(overrides)
    return params


def make_rows(point_index=0, count=2):
    return rows_from_point(
        point_dict(point_index),
        [result_dict(target=f"t{i}") for i in range(count)],
        vantage="censored", censor="gfc", evaded=True,
    )


class TestRowsFromPoint:
    def test_one_row_per_result_with_seq(self):
        rows = make_rows(count=3)
        assert [row["seq"] for row in rows] == [0, 1, 2]
        assert all(row["point"] == 0 for row in rows)

    def test_rows_carry_exactly_the_documented_fields(self):
        (row,) = make_rows(count=1)
        assert tuple(sorted(row)) == ROW_FIELDS

    def test_point_and_result_fields_map_through(self):
        (row,) = rows_from_point(
            point_dict(7), [result_dict()],
            vantage="clean", censor="none", evaded=None,
        )
        assert row["point"] == 7
        assert row["technique"] == "scan"
        assert row["loss"] == 0.05
        assert row["retry"] == "retry-3"
        assert row["seed"] == 3
        assert row["target"] == "facebook.com"
        assert row["verdict"] == "blocked_rst"
        assert row["reason"] == "RST on SYN"
        assert row["latency"] == 1.25
        assert row["attempts"] == 2
        assert row["confidence"] == 0.75
        assert row["vantage"] == "clean"
        assert row["censor"] == "none"
        assert row["evaded"] is None

    def test_rows_are_json_scalars_only(self):
        for row in make_rows(count=2):
            assert json.loads(json.dumps(row)) == row


class TestWriteRecords:
    def test_header_then_canonical_rows(self, tmp_path):
        path = str(tmp_path / "c.records.jsonl")
        rows = make_rows(count=2)
        write_records(path, HASH, rows)
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        header = json.loads(lines[0])
        assert header == {"kind": "header", "schema": RECORD_SCHEMA,
                          "spec_hash": HASH, "fields": list(ROW_FIELDS)}
        assert len(lines) == 3
        for line, row in zip(lines[1:], rows):
            assert line == json.dumps(row, sort_keys=True,
                                      separators=(",", ":"))

    def test_summary_counts_rows_and_verdicts(self, tmp_path):
        path = str(tmp_path / "c.records.jsonl")
        rows = [dict(row, verdict=v) for row, v in zip(
            make_rows(count=3),
            ("accessible", "blocked_rst", "blocked_rst"),
        )]
        summary = write_records(path, HASH, rows)
        assert summary == {
            "rows": 3,
            "by_verdict": {"accessible": 1, "blocked_rst": 2},
        }

    def test_summarize_rows_matches_sink_summary(self, tmp_path):
        rows = make_rows(count=4)
        path = str(tmp_path / "c.records.jsonl")
        assert summarize_rows(rows) == write_records(path, HASH, rows)

    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "c.records.jsonl")
        write_records(path, HASH, make_rows())
        assert not os.path.exists(path + ".tmp")

    def test_accepts_a_generator(self, tmp_path):
        path = str(tmp_path / "c.records.jsonl")
        summary = write_records(path, HASH, (row for row in make_rows(count=5)))
        assert summary["rows"] == 5


class TestReader:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "c.records.jsonl")
        rows = make_rows(count=3)
        write_records(path, HASH, rows)
        assert list(iter_rows(path)) == rows
        assert read_header(path)["spec_hash"] == HASH

    def test_reader_is_a_generator(self, tmp_path):
        path = str(tmp_path / "c.records.jsonl")
        write_records(path, HASH, make_rows(count=2))
        stream = iter_rows(path)
        assert next(stream)["seq"] == 0  # pulls rows lazily

    def test_missing_header_rejected(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        path_obj = tmp_path / "bad.jsonl"
        path_obj.write_text('{"not": "a header"}\n')
        with pytest.raises(ValueError, match="missing header"):
            read_header(path)
        with pytest.raises(ValueError, match="missing header"):
            list(iter_rows(path))

    def test_wrong_schema_rejected(self, tmp_path):
        path_obj = tmp_path / "old.jsonl"
        path_obj.write_text(
            json.dumps({"kind": "header", "schema": RECORD_SCHEMA + 1,
                        "spec_hash": HASH}) + "\n"
        )
        with pytest.raises(ValueError, match="record schema"):
            list(iter_rows(str(path_obj)))

    def test_unparseable_header_rejected(self, tmp_path):
        path_obj = tmp_path / "torn.jsonl"
        path_obj.write_text("{{{{\n")
        with pytest.raises(ValueError):
            read_header(str(path_obj))

    def test_blank_trailing_lines_tolerated(self, tmp_path):
        path = str(tmp_path / "c.records.jsonl")
        write_records(path, HASH, make_rows(count=1))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n\n")
        assert len(list(iter_rows(path))) == 1


class TestShardUnionProperty:
    """The determinism argument, as a property: however the points were
    partitioned into shards and in whatever order they completed, the
    grid-order merge yields exactly one row per (point, seq) and the
    rendered record file is byte-identical to the serial render."""

    @staticmethod
    def _point_records(row_counts):
        records = []
        for index, count in enumerate(row_counts):
            rows = rows_from_point(
                point_dict(index),
                [result_dict(target=f"t{i}") for i in range(count)],
                vantage="censored", censor="gfc", evaded=False,
            )
            records.append({"index": index, "status": "ok", "records": rows})
        return records

    @settings(max_examples=40, deadline=None)
    @given(
        row_counts=st.lists(st.integers(min_value=0, max_value=4),
                            min_size=1, max_size=8),
        shuffle=st.randoms(use_true_random=False),
    )
    def test_rows_union_is_one_row_per_point_and_seq(
        self, tmp_path_factory, row_counts, shuffle
    ):
        records = self._point_records(row_counts)
        completion = list(records)
        shuffle.shuffle(completion)  # arbitrary completion order

        # the runner's merge: index-sorted records, rows concatenated
        outcomes = {record["index"]: record for record in completion}
        merged = [row for index in sorted(outcomes)
                  for row in outcomes[index]["records"]]

        expected_keys = [(index, seq)
                         for index, count in enumerate(row_counts)
                         for seq in range(count)]
        assert [(row["point"], row["seq"]) for row in merged] == expected_keys

        tmp = tmp_path_factory.mktemp("records")
        serial_path = str(tmp / "serial.jsonl")
        merged_path = str(tmp / "merged.jsonl")
        write_records(serial_path, HASH,
                      [row for record in records
                       for row in record["records"]])
        write_records(merged_path, HASH, merged)
        with open(serial_path, "rb") as a, open(merged_path, "rb") as b:
            assert a.read() == b.read()
