"""Record sink wired into the sweep runner and CLI, end to end.

The contracts: (1) record files are ``cmp``-identical across serial,
work-stealing, and kill-then-resume executions of the same spec; (2) the
report's bytes do not depend on whether a sink path was configured; (3)
the sink summary is conserved against the merged metrics; (4) ``repro
report`` / ``repro dashboard`` consume the file through public entry
points, and the dashboard references no external URL.
"""

import json
import os
import re
import signal
import subprocess
import sys

import pytest

from repro.results import iter_rows, read_header, records_path
from repro.runner import CampaignStore, SweepRunner, SweepSpec

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def canonical(report):
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def small_spec(**overrides):
    params = dict(
        name="records", base_seed=5, seeds=(0, 1), loss_rates=(0.0, 0.05),
        retry_policies=("retry-3",), port_count=10, duration=30.0,
    )
    params.update(overrides)
    return SweepSpec(**params)


def vantage_spec(**overrides):
    params = dict(
        name="records-vantage", base_seed=5, seeds=(0,),
        techniques=("scan",), topologies=("censored-as",),
        loss_rates=(0.0,), retry_policies=("single-shot",),
        vantages=("censored", "clean"), duration=30.0,
    )
    params.update(overrides)
    return SweepSpec(**params)


def run_sweep(spec, record_path=None, **kwargs):
    runner = SweepRunner(spec, record_path=record_path, **kwargs)
    return runner.run()


def read_bytes(path):
    with open(path, "rb") as fh:
        return fh.read()


class TestRunnerIntegration:
    def test_record_file_rows_cover_every_point(self, tmp_path):
        path = str(tmp_path / "c.records.jsonl")
        spec = small_spec()
        report = run_sweep(spec, record_path=path, serial=True)
        rows = list(iter_rows(path))
        assert {row["point"] for row in rows} == set(range(len(spec)))
        assert report["summary"]["records"]["rows"] == len(rows)
        assert read_header(path)["spec_hash"] == spec.content_hash()

    def test_report_bytes_independent_of_sink(self, tmp_path):
        spec = small_spec()
        with_sink = run_sweep(
            spec, record_path=str(tmp_path / "c.records.jsonl"), serial=True
        )
        without_sink = run_sweep(spec, record_path=None, serial=True)
        assert canonical(with_sink) == canonical(without_sink)

    def test_rows_conserved_against_merged_metrics(self, tmp_path):
        report = run_sweep(small_spec(), serial=True)
        records = report["summary"]["records"]
        assert records["conserved"] is True
        assert records["by_verdict"] == report["summary"]["verdicts"]

    def test_conservation_detects_row_loss(self, tmp_path):
        # Corrupt the invariant on purpose: strip one point's rows after
        # execution (as a schema-drift bug would) — conserved must flip.
        path = str(tmp_path / "c.records.jsonl")
        store = CampaignStore(str(tmp_path / "c.journal.jsonl"),
                              small_spec().content_hash())
        runner = SweepRunner(small_spec(), serial=True, store=store,
                             record_path=path)
        report = runner.run()
        store.close()
        assert report["summary"]["records"]["conserved"] is True

        broken = CampaignStore(str(tmp_path / "c.journal.jsonl"),
                               small_spec().content_hash(), resume=True)
        first = min(broken.records)
        broken.records[first]["records"] = []
        rerun = SweepRunner(small_spec(), serial=True, store=broken,
                            record_path=path).run()
        broken.close()
        assert rerun["summary"]["records"]["conserved"] is False

    def test_serial_and_stealing_record_files_are_identical(self, tmp_path):
        spec = small_spec()
        serial_path = str(tmp_path / "serial.records.jsonl")
        pool_path = str(tmp_path / "pool.records.jsonl")
        run_sweep(spec, record_path=serial_path, serial=True)
        run_sweep(spec, record_path=pool_path, workers=2, dispatch="stealing")
        assert read_bytes(serial_path) == read_bytes(pool_path)

    def test_failed_points_produce_no_rows(self, tmp_path):
        path = str(tmp_path / "c.records.jsonl")
        spec = small_spec(inject_failures={1: "exception"})
        report = run_sweep(spec, record_path=path, serial=True,
                           max_point_retries=0)
        assert report["summary"]["failed"] == 1
        assert report["summary"]["records"]["conserved"] is True
        assert {row["point"] for row in iter_rows(path)} == (
            set(range(len(spec))) - {1}
        )

    def test_vantage_axis_rows_carry_both_vantages(self, tmp_path):
        path = str(tmp_path / "v.records.jsonl")
        run_sweep(vantage_spec(), record_path=path, serial=True)
        vantages = {row["vantage"] for row in iter_rows(path)}
        assert vantages == {"censored", "clean"}
        censors = {(row["vantage"], row["censor"]) for row in iter_rows(path)}
        assert censors == {("censored", "gfc"), ("clean", "none")}


class TestProgressCallback:
    def test_progress_fires_per_point_and_never_touches_the_report(self):
        spec = small_spec()
        events = []
        runner = SweepRunner(spec, serial=True, progress=events.append)
        with_progress = runner.run()
        silent = SweepRunner(spec, serial=True).run()
        assert canonical(with_progress) == canonical(silent)
        assert len(events) == len(spec)
        last = events[-1]
        assert last["done"] == len(spec)
        assert last["total"] == len(spec)
        assert last["failed"] == 0
        assert last["sim_cost"] == pytest.approx(
            sum(point.duration for point in spec.points())
        )

    def test_progress_counts_failures(self):
        spec = small_spec(inject_failures={0: "exception"})
        events = []
        SweepRunner(spec, serial=True, max_point_retries=0,
                    progress=events.append).run()
        assert events[-1]["failed"] == 1


def run_cli(args, cwd, check=True):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, cwd=cwd, capture_output=True, text=True, timeout=300,
    )
    if check:
        assert proc.returncode == 0, proc.stderr
    return proc


def write_spec(tmp_path, spec):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.as_dict()))
    return str(spec_path)


class TestCLIPipeline:
    def test_kill_resume_record_file_matches_uninterrupted(self, tmp_path):
        spec = small_spec()
        spec_path = write_spec(tmp_path, spec)

        clean_prefix = str(tmp_path / "clean")
        run_cli(["sweep", spec_path, "--serial", "--out", clean_prefix],
                cwd=str(tmp_path))

        killed_prefix = str(tmp_path / "killed")
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", spec_path, "--serial",
             "--out", killed_prefix, "--kill-after", "2",
             "--partial-every", "1"],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            returncode = proc.wait(timeout=120)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        assert returncode == 137, "kill injection did not fire"
        # the kill landed before the merge: no record file yet
        assert not os.path.exists(records_path(killed_prefix))

        run_cli(["sweep", spec_path, "--serial", "--resume", killed_prefix],
                cwd=str(tmp_path))
        assert read_bytes(records_path(clean_prefix)) == read_bytes(
            records_path(killed_prefix)
        )
        assert read_bytes(f"{clean_prefix}.report.json") == read_bytes(
            f"{killed_prefix}.report.json"
        )

    def test_report_command_text_and_json(self, tmp_path):
        spec_path = write_spec(tmp_path, vantage_spec())
        prefix = str(tmp_path / "v")
        run_cli(["sweep", spec_path, "--serial", "--out", prefix],
                cwd=str(tmp_path))

        text = run_cli(["report", prefix], cwd=str(tmp_path)).stdout
        assert "vantage-differential classification" in text
        assert "accuracy/evasion matrix" in text

        as_json = run_cli(["report", prefix, "--json"],
                          cwd=str(tmp_path)).stdout
        doc = json.loads(as_json)
        assert doc["rows"] > 0
        assert "classification" in doc and "matrix" in doc
        # canonical output: byte-stable across invocations
        again = run_cli(["report", prefix, "--json"],
                        cwd=str(tmp_path)).stdout
        assert as_json == again

    def test_report_without_records_fails_cleanly(self, tmp_path):
        proc = run_cli(["report", str(tmp_path / "nope")],
                       cwd=str(tmp_path), check=False)
        assert proc.returncode == 1
        assert "no record file" in proc.stderr

    def test_dashboard_is_self_contained(self, tmp_path):
        spec_path = write_spec(tmp_path, vantage_spec())
        prefix = str(tmp_path / "v")
        run_cli(["sweep", spec_path, "--serial", "--out", prefix],
                cwd=str(tmp_path))
        out = str(tmp_path / "dash.html")
        run_cli(["dashboard", prefix, "--out", out], cwd=str(tmp_path))
        html = read_bytes(out).decode("utf-8")
        assert "<svg" in html and "</html>" in html
        assert "<script" not in html
        # self-contained: no external URL of any scheme, no protocol-
        # relative src/href
        assert not re.search(r"(?:https?|ftp|data)://|//[a-z0-9.-]+\.[a-z]{2,}",
                             html, re.IGNORECASE)
        assert "prefers-color-scheme" in html

    def test_sweep_quiet_flag_accepted(self, tmp_path):
        spec_path = write_spec(tmp_path, small_spec(seeds=(0,),
                                                    loss_rates=(0.0,)))
        prefix = str(tmp_path / "q")
        proc = run_cli(["sweep", spec_path, "--serial", "--quiet",
                        "--out", prefix], cwd=str(tmp_path))
        # stderr is not a TTY here, so no progress frames either way
        assert "\r" not in proc.stderr
