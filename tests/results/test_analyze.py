"""Streaming analysis: classification labels, matrix, curves, quantiles."""

import pytest

from repro.results import RecordAnalysis, analyze_records


def row(**overrides):
    base = dict(
        attempts=1, censor="gfc", confidence=0.9, evaded=None, latency=0.5,
        loss=0.0, point=0, reason="", retry="retry-3", seed=0, seq=0,
        target="facebook.com", technique="scan", topology="censored-as",
        vantage="censored", verdict="blocked_rst",
    )
    base.update(overrides)
    return base


def classify_one(rows, **kwargs):
    doc = analyze_records(rows, **kwargs)
    assert len(doc["classification"]) == 1
    return doc["classification"][0]


class TestGroundTruth:
    def test_blocked_names_are_blocked_only_at_censored_vantage(self):
        analysis = RecordAnalysis()
        assert analysis.truly_blocked("facebook.com", "censored") is True
        assert analysis.truly_blocked("facebook.com", "clean") is False

    def test_control_names_are_open_everywhere(self):
        analysis = RecordAnalysis()
        assert analysis.truly_blocked("example.org", "censored") is False
        assert analysis.truly_blocked("example.org", "clean") is False

    def test_unknown_targets_are_unscored(self):
        analysis = RecordAnalysis()
        assert analysis.truly_blocked("mystery.example", "censored") is None

    def test_custom_name_lists_override_defaults(self):
        analysis = RecordAnalysis(blocked_targets=["weird.example"],
                                  control_targets=[])
        assert analysis.truly_blocked("weird.example", "censored") is True
        assert analysis.truly_blocked("facebook.com", "censored") is None


class TestClassification:
    def test_blocked_at_censored_open_at_clean_is_censored(self):
        entry = classify_one([
            row(vantage="censored", verdict="blocked_rst"),
            row(vantage="clean", censor="none", verdict="accessible", point=1),
        ])
        assert entry["classification"] == "censored"
        assert entry["confidence"] == 1.0

    def test_open_everywhere_is_accessible(self):
        entry = classify_one([
            row(vantage="censored", verdict="accessible"),
            row(vantage="clean", censor="none", verdict="accessible", point=1),
        ])
        assert entry["classification"] == "accessible"

    def test_blocked_at_both_vantages_is_path_anomaly(self):
        entry = classify_one([
            row(vantage="censored", verdict="blocked_timeout"),
            row(vantage="clean", censor="none", verdict="blocked_timeout",
                point=1),
        ])
        assert entry["classification"] == "path-anomaly"

    def test_open_at_censored_blocked_at_clean_is_inconsistent(self):
        entry = classify_one([
            row(vantage="censored", verdict="accessible"),
            row(vantage="clean", censor="none", verdict="blocked_timeout",
                point=1),
        ])
        assert entry["classification"] == "inconsistent"

    def test_censored_vantage_alone_is_unconfirmed(self):
        entry = classify_one([row(vantage="censored", verdict="blocked_rst")])
        assert entry["classification"] == "unconfirmed-censored"
        assert "clean" not in entry

    def test_clean_vantage_alone_blocked_is_path_anomaly(self):
        entry = classify_one([
            row(vantage="clean", censor="none", verdict="blocked_timeout"),
        ])
        assert entry["classification"] == "path-anomaly"

    def test_all_inconclusive_is_inconclusive(self):
        entry = classify_one([
            row(verdict="inconclusive"),
            row(vantage="clean", verdict="inconclusive", point=1),
        ])
        assert entry["classification"] == "inconclusive"
        assert entry["confidence"] == 0.0

    def test_confidence_is_rows_weighted_agreement(self):
        entry = classify_one([
            row(verdict="blocked_rst", point=0),
            row(verdict="blocked_rst", point=1),
            row(verdict="accessible", point=2),
            row(vantage="clean", censor="none", verdict="accessible", point=3),
        ])
        assert entry["classification"] == "censored"
        # censored vantage: 2/3 agreement over 3 rows; clean: 1/1 over 1
        assert entry["confidence"] == pytest.approx((2 / 3 * 3 + 1) / 4)

    def test_per_vantage_stats_are_reported(self):
        entry = classify_one([
            row(verdict="blocked_rst"),
            row(verdict="inconclusive", point=1),
            row(vantage="clean", censor="none", verdict="accessible", point=2),
        ])
        assert entry["censored"] == {
            "rows": 2, "blocked": 1, "accessible": 0, "inconclusive": 1,
            "mean_confidence": 0.9,
        }
        assert entry["clean"]["rows"] == 1


class TestMatrix:
    def test_detects_is_recall_over_blocked_ground_truth(self):
        doc = analyze_records([
            row(target="facebook.com", verdict="blocked_rst"),
            row(target="twitter.com", verdict="accessible", point=1),
        ])
        assert doc["matrix"]["scan"]["detects"] == pytest.approx(0.5)

    def test_detects_none_without_blocked_ground_truth(self):
        doc = analyze_records([
            row(target="example.org", verdict="accessible"),
        ])
        assert doc["matrix"]["scan"]["detects"] is None

    def test_false_block_rate_over_open_ground_truth(self):
        doc = analyze_records([
            row(target="example.org", verdict="blocked_timeout"),
            row(target="wikipedia.org", verdict="accessible", point=1),
        ])
        assert doc["matrix"]["scan"]["false_block_rate"] == pytest.approx(0.5)

    def test_evasion_aggregates_point_level_stamps_once_per_point(self):
        doc = analyze_records([
            row(evaded=True, point=0, seq=0),
            row(evaded=True, point=0, seq=1, target="twitter.com"),
            row(evaded=False, point=1, seq=0),
        ])
        # two points with MVR data, one evaded: seq>0 rows must not vote
        assert doc["matrix"]["scan"]["evasion"] == pytest.approx(0.5)

    def test_evasion_none_without_mvr_data(self):
        doc = analyze_records([row(evaded=None)])
        assert doc["matrix"]["scan"]["evasion"] is None

    def test_unknown_targets_do_not_enter_the_confusion(self):
        doc = analyze_records([
            row(target="mystery.example", verdict="blocked_rst"),
        ])
        assert doc["matrix"]["scan"]["scored"] == 0


class TestCurvesAndLatency:
    def test_curves_keyed_by_technique_retry_sorted_by_loss(self):
        doc = analyze_records([
            row(target="example.org", loss=0.05, verdict="blocked_timeout"),
            row(target="example.org", loss=0.0, verdict="accessible", point=1),
        ])
        assert doc["false_block_curves"]["scan"]["retry-3"] == [
            [0.0, 0.0, 1], [0.05, 1.0, 1],
        ]

    def test_cells_without_open_rows_are_skipped(self):
        doc = analyze_records([
            row(target="facebook.com", verdict="blocked_rst"),
        ])
        assert doc["false_block_curves"] == {}

    def test_latency_quantiles_per_technique(self):
        doc = analyze_records([
            row(latency=0.02), row(latency=0.3, point=1),
            row(latency=2.0, point=2),
        ])
        latency = doc["latency"]["scan"]
        assert latency["count"] == 3
        assert 0.0 < latency["p50"] <= 0.5
        assert latency["p99"] <= 5.0


class TestDocument:
    def test_points_counts_seq_zero_rows_only(self):
        doc = analyze_records([
            row(point=0, seq=0), row(point=0, seq=1, target="t2"),
            row(point=1, seq=0),
        ])
        assert doc["rows"] == 3
        assert doc["points"] == 2

    def test_by_verdict_and_tally_are_sorted(self):
        doc = analyze_records([
            row(verdict="blocked_rst"),
            row(vantage="clean", censor="none", verdict="accessible", point=1),
            row(target="example.org", verdict="accessible", point=2),
            row(target="example.org", vantage="clean", censor="none",
                verdict="accessible", point=3),
        ])
        assert list(doc["by_verdict"]) == sorted(doc["by_verdict"])
        assert doc["classification_tally"] == {"accessible": 1, "censored": 1}

    def test_empty_stream_yields_empty_document(self):
        doc = analyze_records([])
        assert doc["rows"] == 0
        assert doc["classification"] == []
        assert doc["matrix"] == {}
        assert doc["latency"] == {}
