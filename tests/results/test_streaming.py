"""The streaming-reader memory contract, proven at six-figure row counts.

``iter_rows`` holds one line at a time and ``RecordAnalysis`` keys all
state by vocabulary, so analyzing a record file takes memory bounded by
the number of distinct techniques/targets/grid cells — never the number
of rows.  This test writes a >=100k-row record file through a generator
(so building it is itself bounded), then analyzes it under tracemalloc
and asserts the traced peak stays far below the file's own size.
"""

import os
import tracemalloc

from repro.results import analyze_records, iter_rows, write_records

ROWS = 120_000
TECHNIQUES = ("scan", "overt-http", "spam")
TARGETS = ("facebook.com", "twitter.com", "example.org", "wikipedia.org",
           "mystery.example")
VERDICTS = ("blocked_rst", "accessible", "inconclusive", "blocked_timeout")


def synthetic_rows(count):
    for i in range(count):
        technique = TECHNIQUES[i % len(TECHNIQUES)]
        target = TARGETS[i % len(TARGETS)]
        verdict = VERDICTS[i % len(VERDICTS)]
        yield {
            "attempts": 1 + i % 3,
            "censor": "gfc" if i % 2 == 0 else "none",
            "confidence": (i % 10) / 10.0,
            "evaded": (i % 7 == 0) if i % 2 == 0 else None,
            "latency": (i % 500) / 100.0,
            "loss": (i % 4) * 0.02,
            "point": i // 4,
            "reason": "synthetic",
            "retry": "retry-3" if i % 2 == 0 else "single-shot",
            "seed": i % 8,
            "seq": i % 4,
            "target": target,
            "technique": technique,
            "topology": "censored-as",
            "vantage": "censored" if i % 2 == 0 else "clean",
            "verdict": verdict,
        }


def test_analysis_memory_is_bounded_by_vocabulary_not_rows(tmp_path):
    path = str(tmp_path / "big.records.jsonl")
    summary = write_records(path, "feedfacefeedface", synthetic_rows(ROWS))
    assert summary["rows"] == ROWS
    file_size = os.path.getsize(path)
    assert file_size > 10 * 1024 * 1024  # the file is genuinely large

    tracemalloc.start()
    try:
        doc = analyze_records(iter_rows(path))
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    # The whole analysis — reader included — must stay far below the
    # file size: the contract is O(vocabulary), and this vocabulary is
    # a few dozen keys.  8 MiB leaves 10x headroom over observed peaks
    # while still being ~4x smaller than the file.
    assert peak < 8 * 1024 * 1024, f"peak {peak} bytes for {file_size}-byte file"

    assert doc["rows"] == ROWS
    assert sum(doc["by_verdict"].values()) == ROWS
    assert set(doc["matrix"]) == set(TECHNIQUES)
    # classification covered every (technique, target) pair that appeared
    assert len(doc["classification"]) == len(TECHNIQUES) * len(TARGETS)
    for technique in TECHNIQUES:
        assert doc["latency"][technique]["count"] > 0


def test_reader_streams_lazily(tmp_path):
    path = str(tmp_path / "lazy.records.jsonl")
    write_records(path, "feedfacefeedface", synthetic_rows(1000))
    stream = iter_rows(path)
    first = next(stream)
    assert first["seq"] == 0
    # consuming a prefix and abandoning the generator must not error
    for _, _ in zip(range(10), stream):
        pass
    stream.close()
