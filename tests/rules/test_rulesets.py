"""Unit tests for the stock rulesets."""

import pytest

from repro.rules import (
    BLOCKED_DOMAINS,
    DEFAULT_VARIABLES,
    DISCARD_CLASSTYPES,
    GFC_KEYWORDS,
    RETAIN_CLASSTYPES,
    RuleEngine,
    censor_ruleset_text,
    mvr_detection_ruleset_text,
    parse_ruleset,
    surveillance_interest_ruleset_text,
)


class TestRulesetsParse:
    def test_censor_ruleset_parses(self):
        rules = parse_ruleset(censor_ruleset_text(), DEFAULT_VARIABLES)
        # One keyword rule per keyword, plus Host and SNI rules per domain.
        assert len(rules) == len(GFC_KEYWORDS) + 2 * len(BLOCKED_DOMAINS)
        assert all(rule.action == "reject" for rule in rules)

    def test_mvr_ruleset_parses(self):
        rules = parse_ruleset(mvr_detection_ruleset_text(), DEFAULT_VARIABLES)
        assert all(rule.action == "alert" for rule in rules)
        classtypes = {rule.classtype for rule in rules}
        assert classtypes <= DISCARD_CLASSTYPES

    def test_interest_ruleset_parses(self):
        rules = parse_ruleset(surveillance_interest_ruleset_text(), DEFAULT_VARIABLES)
        assert all(rule.classtype in RETAIN_CLASSTYPES for rule in rules)

    def test_combined_rulesets_have_unique_sids(self):
        text = "\n".join([
            censor_ruleset_text(),
            mvr_detection_ruleset_text(),
            surveillance_interest_ruleset_text(),
        ])
        rules = parse_ruleset(text, DEFAULT_VARIABLES)
        sids = [rule.sid for rule in rules]
        assert len(sids) == len(set(sids))

    def test_classtype_sets_disjoint(self):
        assert not (DISCARD_CLASSTYPES & RETAIN_CLASSTYPES)

    def test_custom_keywords(self):
        text = censor_ruleset_text(keywords=["foo"], blocked_domains=[])
        rules = parse_ruleset(text)
        assert len(rules) == 1
        assert rules[0].contents[0].pattern == b"foo"

    def test_no_per_lookup_dns_interest_rules(self):
        """The Syria argument: per-lookup DNS alerts are infeasible, so the
        interest ruleset must only have the bulk-resolution threshold rule."""
        rules = parse_ruleset(surveillance_interest_ruleset_text(), DEFAULT_VARIABLES)
        dns_rules = [rule for rule in rules if rule.protocol == "udp"]
        assert len(dns_rules) == 1
        assert dns_rules[0].threshold is not None


class TestRulesetSemantics:
    def test_bittorrent_handshake_detected(self):
        from repro.traffic import BITTORRENT_HANDSHAKE
        from tests.rules.test_engine import http_flow

        engine = RuleEngine.from_text(mvr_detection_ruleset_text(), DEFAULT_VARIABLES)
        alerts = http_flow(engine, BITTORRENT_HANDSHAKE, sp=6881)
        assert any(a.classtype == "p2p" for a in alerts)

    def test_spam_content_detected(self):
        from tests.rules.test_engine import http_flow

        engine = RuleEngine.from_text(mvr_detection_ruleset_text(), DEFAULT_VARIABLES)
        alerts = http_flow(engine, b"Subject: YOU ARE A WINNER\r\n", sp=25)
        assert any(a.classtype == "spam" for a in alerts)

    def test_gfc_keyword_rule_bidirectional(self):
        from tests.rules.test_engine import http_flow, tcp
        from repro.packets import ACK, PSH

        engine = RuleEngine.from_text(censor_ruleset_text(), DEFAULT_VARIABLES)
        # server->client direction must also trigger (GFC filters responses)
        http_flow(engine, b"GET / HTTP/1.1\r\n\r\n")
        alerts = engine.process(
            tcp("203.0.113.10", "10.1.0.5", 80, 40000, PSH | ACK, seq=501, ack=120,
                payload=b"<html>falun dafa</html>"), 0.1
        )
        assert any("falun" in a.msg for a in alerts)
