"""The multipattern automaton's contract: exact hits, never a superset.

The prefilter is only sound if :meth:`MultiPatternAutomaton.scan` reports
*precisely* the literals present in a haystack — a missed literal would
silently drop alerts, an invented one merely wastes work.  Hypothesis
drives the automaton with adversarial literal sets (overlapping needles,
shared prefixes/suffixes, case-sensitive and nocase members of the same
folded pattern) over both scan strategies (the DFA walk and the
per-pattern C ``in`` path for large haystacks) and the incremental
chunked stream scan, always comparing against the one-``in``-per-literal
reference semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.rules import RuleEngine, parse_rule
from repro.rules.multipattern import (
    ONE_SHOT_DFA_LIMIT,
    MultiPatternAutomaton,
    anchor_literal_id,
    intern_literal,
    literal_of,
    required_literal_ids,
)

# A deliberately tiny alphabet so random needles overlap, nest, and share
# prefixes constantly — the hard cases for failure links and output
# collapsing.  Mixed case exercises folding + raw confirmation.
ALPHABET = list(b"abAB")
HAY_ALPHABET = list(b"abABcd")

needles = st.lists(
    st.sampled_from(ALPHABET), min_size=1, max_size=5
).map(bytes)

#: (needle, nocase) pairs honouring the parser contract: nocase needles
#: arrive pre-lowered (``ContentOption.needle()`` lowers them once).
literals = st.lists(
    st.tuples(needles, st.booleans()).map(
        lambda pair: (pair[0].lower(), True) if pair[1] else (pair[0], False)
    ),
    min_size=1,
    max_size=12,
)

haystacks = st.lists(
    st.sampled_from(HAY_ALPHABET), min_size=0, max_size=80
).map(bytes)

large_haystacks = st.lists(
    st.sampled_from(HAY_ALPHABET),
    min_size=ONE_SHOT_DFA_LIMIT + 1,
    max_size=ONE_SHOT_DFA_LIMIT + 200,
).map(bytes)


def _build(literal_pairs):
    automaton = MultiPatternAutomaton()
    for needle, nocase in literal_pairs:
        automaton.add_literal(needle, nocase)
    return automaton


def _reference(automaton, haystack):
    """What every strategy must report: one ``in`` per known literal."""
    lowered = haystack.lower()
    return {
        lid
        for lid in automaton.known_ids()
        if literal_of(lid)[0] in (lowered if literal_of(lid)[1] else haystack)
    }


class TestScanExactness:
    @settings(max_examples=300, deadline=None)
    @given(literals, haystacks)
    def test_dfa_scan_equals_naive_in(self, literal_pairs, haystack):
        automaton = _build(literal_pairs)
        assert automaton.scan(haystack) == _reference(automaton, haystack)

    @settings(max_examples=60, deadline=None)
    @given(literals, large_haystacks)
    def test_large_haystack_path_equals_naive_in(self, literal_pairs, haystack):
        assert len(haystack) > ONE_SHOT_DFA_LIMIT  # the per-pattern C path
        automaton = _build(literal_pairs)
        assert automaton.scan(haystack) == _reference(automaton, haystack)

    @settings(max_examples=150, deadline=None)
    @given(literals, haystacks, st.integers(min_value=1, max_value=7))
    def test_chunked_stream_scan_equals_one_shot(
        self, literal_pairs, haystack, step
    ):
        """Resumable scanning over a growing buffer sees cross-chunk
        matches and reports the same set as one scan of the final buffer."""
        automaton = _build(literal_pairs)
        present = set()
        state = 0
        scanned = 0
        for end in range(step, len(haystack) + step, step):
            buffer = haystack[:end]
            state = automaton.scan_chunk(
                buffer.lower(), buffer, scanned, state, present
            )
            scanned = len(buffer)
        assert present == _reference(automaton, haystack)

    @settings(max_examples=100, deadline=None)
    @given(literals, literals, haystacks)
    def test_midlife_extension_rescans_correctly(
        self, first, second, haystack
    ):
        """add_literal after a scan extends the automaton; the next scan
        reflects the union and bumps the version (stream-state fencing)."""
        automaton = _build(first)
        automaton.scan(haystack)
        version_before = automaton.ensure_ready()
        known_before = automaton.known_ids()
        for needle, nocase in second:
            automaton.add_literal(needle, nocase)
        grew = not (automaton.known_ids() <= known_before)
        assert automaton.scan(haystack) == _reference(automaton, haystack)
        if grew:
            # a genuine extension re-finalized; the stream-state fence
            # (the version ensure_ready reports) must have moved past
            # every saved StreamScanState
            assert automaton.ensure_ready() > version_before


class TestOverlappingLiterals:
    def test_nested_and_overlapping_needles_all_hit(self):
        automaton = MultiPatternAutomaton()
        ids = {
            needle: automaton.add_literal(needle, False)
            for needle in (b"ab", b"bab", b"abab", b"b")
        }
        present = automaton.scan(b"xabab")
        assert present == set(ids.values())

    def test_case_variants_are_distinct_ids(self):
        automaton = MultiPatternAutomaton()
        sensitive = automaton.add_literal(b"Host", False)
        folded = automaton.add_literal(b"host", True)
        assert sensitive != folded
        assert automaton.scan(b"xx Host yy") == {sensitive, folded}
        assert automaton.scan(b"xx HOST yy") == {folded}
        assert automaton.scan(b"xx host yy") == {folded}


class TestRuleCaches:
    def test_required_ids_and_anchor(self):
        rule = parse_rule(
            'alert tcp any any -> any 80 (msg:"t"; content:"short"; '
            'content:"a-much-longer-literal"; sid:990001;)'
        )
        required = required_literal_ids(rule)
        anchor = anchor_literal_id(rule)
        assert required == {
            intern_literal(b"short", False),
            intern_literal(b"a-much-longer-literal", False),
        }
        assert anchor == intern_literal(b"a-much-longer-literal", False)
        # cached on the rule object (hot path does attribute access only)
        assert rule._mp_required is required
        assert rule._mp_anchor == anchor

    def test_negated_only_rule_has_no_required_ids(self):
        rule = parse_rule(
            'alert udp any any -> any 53 (msg:"t"; content:!"benign"; '
            'dsize:>0; sid:990002;)'
        )
        assert required_literal_ids(rule) is None
        assert anchor_literal_id(rule) is None


class TestStreamRewriteFencing:
    def test_last_policy_rewrite_is_rescanned(self):
        """A retransmission that rewrites buffered bytes (overlap policy
        "last") must invalidate the saved scan state — the multipattern
        engine has to alert exactly like the naive scan on the new
        content."""
        text = 'alert tcp any any -> any 80 (msg:"evil"; content:"evil"; sid:990010;)'
        fast = RuleEngine.from_text(text, overlap_policy="last",
                                    use_index=True, prefilter="multipattern")
        naive = RuleEngine.from_text(text, overlap_policy="last",
                                     use_index=False, prefilter="none")
        from repro.packets import ACK, IPPacket, PSH, TCPSegment

        def seg(payload, seq):
            return IPPacket(
                src="10.0.0.1", dst="10.0.0.2",
                payload=TCPSegment(sport=40000, dport=80, seq=seq,
                                   flags=PSH | ACK, payload=payload),
            )

        for when, packet in [(0.0, seg(b"good", 100)), (0.1, seg(b"evil", 100))]:
            assert [a.sid for a in fast.process(packet, when)] == \
                [a.sid for a in naive.process(packet, when)]
        assert [a.sid for a in fast.alerts] == [990010]
