"""Semantic equivalence of every engine fast path and the naive full scan.

The dispatch index, MatchContext sharing, the literal prefilters (per-rule
anchor scan and the ruleset-wide Aho–Corasick pass), and batched
evaluation are pure optimizations: for any packet trace they must produce
*identical* alert sequences (same alerts, same order, pass-rule
suppression intact) to ``RuleEngine(use_index=False, prefilter="none")``,
which still runs the original rule-by-rule scan.  Two traces exercise
this: one deterministic hand-built mixed trace (TCP with a keyword split
across segments, UDP DNS, ICMP, threshold-triggering bursts, pass-rule
traffic, bidirectional and port-range rules) and one seeded random trace,
fed through the full cross-product of ``use_index`` × ``prefilter`` ×
single-packet vs ``process_batch``.
"""

import random

import pytest

from repro.packets import (
    ACK,
    ICMPMessage,
    IPPacket,
    PSH,
    SYN,
    TCPSegment,
    UDPDatagram,
)
from repro.rules import (
    DEFAULT_VARIABLES,
    RuleEngine,
    censor_ruleset_text,
    mvr_detection_ruleset_text,
    surveillance_interest_ruleset_text,
)

EXTRA_RULES = "\n".join([
    # pass rule ahead of a catch-all: suppression ordering must survive
    'pass tcp 10.1.0.99 any -> any any (msg:"EQ whitelist"; sid:910000;)',
    'alert tcp any any -> any any (msg:"EQ tcp syn catchall"; flags:S; sid:910001;)',
    # bidirectional rule on a concrete port: reverse direction must dispatch
    'alert tcp any any <> any 4444 (msg:"EQ bidir 4444"; content:"c2"; sid:910002;)',
    # port range rule (enumerated bucket) and a negated-port rule (catch-all)
    'alert udp any any -> any [7000:7004] (msg:"EQ udp range"; dsize:>2; sid:910003;)',
    'alert tcp any any -> any !80 (msg:"EQ not-80 rst"; flags:R; sid:910004;)',
    # icmp options
    'alert icmp any any -> any any (msg:"EQ ping"; itype:8; sid:910005;)',
    # negated content (no anchor literal possible)
    'alert udp any any -> any 9999 (msg:"EQ negated"; content:!"benign"; dsize:>0; sid:910006;)',
])


def _ruleset_text():
    return "\n".join([
        censor_ruleset_text(),
        mvr_detection_ruleset_text(),
        surveillance_interest_ruleset_text(),
        EXTRA_RULES,
    ])


def _tcp(src, dst, sport, dport, flags, seq=0, ack=0, payload=b""):
    return IPPacket(src=src, dst=dst,
                    payload=TCPSegment(sport=sport, dport=dport, seq=seq, ack=ack,
                                       flags=flags, payload=payload))


def _udp(src, dst, sport, dport, payload=b""):
    return IPPacket(src=src, dst=dst,
                    payload=UDPDatagram(sport=sport, dport=dport, payload=payload))


def _handshake(trace, t, c, s, cp, sp, isn=100, ssn=500):
    trace.append((t, _tcp(c, s, cp, sp, SYN, seq=isn)))
    trace.append((t + 0.01, _tcp(s, c, sp, cp, SYN | ACK, seq=ssn, ack=isn + 1)))
    trace.append((t + 0.02, _tcp(c, s, cp, sp, ACK, seq=isn + 1, ack=ssn + 1)))
    return isn + 1, ssn + 1


def build_trace():
    """A deterministic packet trace exercising every dispatch shape."""
    trace = []

    # 1. HTTP flow with a censored keyword split across two segments.
    cseq, _ = _handshake(trace, 0.0, "10.1.0.5", "203.0.113.10", 40000, 80)
    trace.append((0.03, _tcp("10.1.0.5", "203.0.113.10", 40000, 80, PSH | ACK,
                             seq=cseq, payload=b"GET /fal")))
    trace.append((0.04, _tcp("10.1.0.5", "203.0.113.10", 40000, 80, PSH | ACK,
                             seq=cseq + 8, payload=b"un HTTP/1.1\r\nHost: example.org\r\n\r\n")))

    # 2. HTTP flow with a blocked Host header (nocase content path).
    cseq, _ = _handshake(trace, 0.2, "10.1.0.6", "203.0.113.20", 40001, 80)
    trace.append((0.23, _tcp("10.1.0.6", "203.0.113.20", 40001, 80, PSH | ACK,
                             seq=cseq, payload=b"GET / HTTP/1.1\r\nHost: TWITTER.com\r\n\r\n")))

    # 3. SYN-scan burst from one source: threshold type both, count 30/10s.
    for i in range(35):
        trace.append((1.0 + i * 0.05, _tcp("10.1.0.7", "203.0.113.30",
                                           31000 + i, 1 + i, SYN)))

    # 4. HTTP GET flood (threshold count 20/5s on port 80, established flow).
    cseq, _ = _handshake(trace, 4.0, "10.1.0.8", "203.0.113.10", 40500, 80)
    for i in range(25):
        trace.append((4.1 + i * 0.1, _tcp("10.1.0.8", "203.0.113.10", 40500, 80,
                                          PSH | ACK, seq=cseq + i * 16,
                                          payload=b"GET /x HTTP/1.1\r\n")))

    # 5. Bulk MX lookups for a censored domain (UDP threshold rule).
    mx_query = (b"\x00\x07\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00"
                b"\x07twitter\x03com\x00\x00\x0f\x00\x01")
    for i in range(10):
        trace.append((8.0 + i * 0.2, _udp("10.1.0.9", "8.8.8.8", 25000 + i, 53, mx_query)))

    # 6. ICMP echo requests (itype rule) and an oversized-payload packet.
    for i in range(3):
        trace.append((11.0 + i * 0.1,
                      IPPacket(src="10.1.0.10", dst="203.0.113.40",
                               payload=ICMPMessage.echo_request(ident=7, sequence=i))))

    # 7. pass-rule traffic: whitelisted source sending SYNs.
    trace.append((12.0, _tcp("10.1.0.99", "203.0.113.10", 42000, 80, SYN)))
    trace.append((12.1, _tcp("10.1.0.99", "203.0.113.10", 42001, 81, SYN)))

    # 8. Bidirectional rule, reverse direction: server on 4444 talks back.
    cseq, ssn = _handshake(trace, 13.0, "10.1.0.11", "198.51.100.5", 43000, 4444)
    trace.append((13.05, _tcp("198.51.100.5", "10.1.0.11", 4444, 43000, PSH | ACK,
                              seq=ssn, ack=cseq, payload=b"c2 beacon")))

    # 9. UDP port-range rule and the negated-content rule.
    trace.append((14.0, _udp("10.1.0.12", "203.0.113.50", 26000, 7002, b"xyzzy")))
    trace.append((14.1, _udp("10.1.0.12", "203.0.113.50", 26001, 9999, b"malicious")))
    trace.append((14.2, _udp("10.1.0.12", "203.0.113.50", 26002, 9999, b"benign bytes")))

    # 10. RST to a non-80 port (negated port spec → catch-all bucket).
    trace.append((15.0, _tcp("10.1.0.13", "203.0.113.60", 44000, 8443, 0x04)))

    # 11. BitTorrent handshake + DHT ping (content rules, UDP high ports).
    cseq, _ = _handshake(trace, 16.0, "10.1.0.14", "198.51.100.9", 45000, 51413)
    trace.append((16.03, _tcp("10.1.0.14", "198.51.100.9", 45000, 51413, PSH | ACK,
                              seq=cseq, payload=b"\x13BitTorrent protocol" + b"\x00" * 8)))
    trace.append((16.1, _udp("10.1.0.14", "198.51.100.9", 45001, 6889,
                             b"d1:ad2:id20:abcdefghij0123456789e1:q4:ping")))

    # 12. Raw-bytes payload with a non-transport protocol (ip rules only).
    trace.append((17.0, IPPacket(src="10.1.0.15", dst="203.0.113.70",
                                 payload=b"\x00" * 32, protocol=47)))

    trace.sort(key=lambda item: item[0])
    return trace


#: payload corpus for the random trace: censored keywords (both cases),
#: protocol signatures, and inert filler, so literal hits, nocase paths,
#: and keyword-split-across-segments all occur by construction
_CORPUS = (
    b"GET /falun HTTP/1.1\r\nHost: example.org\r\n\r\n"
    b"GET / HTTP/1.1\r\nHost: TWITTER.com\r\n\r\n"
    b"\x13BitTorrent protocol" + b"\x00" * 8 +
    b"c2 beacon heartbeat " + b"benign filler bytes " * 3 +
    b"d1:ad2:id20:abcdefghij0123456789e1:q4:ping"
    b"ultrasurf tor-bridge GETx malicious xyzzy "
)


def build_random_trace(seed=1129, count=600):
    """Seeded mixed traffic: streamed TCP flows slicing keyword-bearing
    payload into odd-sized segments, plus random UDP/ICMP/raw datagrams."""
    rng = random.Random(seed)
    trace = []
    now = 0.0
    sources = [f"10.2.0.{i}" for i in range(1, 6)] + ["10.1.0.99"]
    dests = ["203.0.113.10", "198.51.100.5", "203.0.113.50"]
    tcp_ports = [80, 4444, 6881, 8443, 25, 51413]
    udp_ports = [53, 7002, 9999, 6889, 30000]
    # A few long-lived TCP flows streaming the corpus in random chunks.
    flows = []
    for i in range(6):
        flows.append({
            "src": rng.choice(sources), "dst": rng.choice(dests),
            "sport": 40000 + i, "dport": rng.choice(tcp_ports),
            "seq": 100, "sent": 0,
        })
    for _ in range(count):
        now += rng.random() * 0.3
        shape = rng.random()
        if shape < 0.45:
            flow = rng.choice(flows)
            if flow["sent"] == 0:
                trace.append((now, _tcp(flow["src"], flow["dst"], flow["sport"],
                                        flow["dport"], SYN, seq=flow["seq"] - 1)))
                flow["sent"] = 1
                continue
            chunk = _CORPUS[flow["sent"] % len(_CORPUS):][: rng.randint(1, 17)]
            if not chunk:
                chunk = _CORPUS[: rng.randint(1, 17)]
            trace.append((now, _tcp(flow["src"], flow["dst"], flow["sport"],
                                    flow["dport"], PSH | ACK, seq=flow["seq"],
                                    payload=chunk)))
            flow["seq"] += len(chunk)
            flow["sent"] += len(chunk)
            if rng.random() < 0.08:  # retransmission (overlap policies)
                trace.append((now + 0.001,
                              _tcp(flow["src"], flow["dst"], flow["sport"],
                                   flow["dport"], PSH | ACK,
                                   seq=flow["seq"] - len(chunk), payload=chunk)))
        elif shape < 0.65:
            flags = rng.choice([SYN, SYN | ACK, ACK, PSH | ACK, 0x04, 0x01 | ACK])
            trace.append((now, _tcp(rng.choice(sources), rng.choice(dests),
                                    rng.randint(1024, 65000), rng.choice(tcp_ports),
                                    flags, seq=rng.randint(1, 10_000))))
        elif shape < 0.85:
            start = rng.randint(0, len(_CORPUS) - 1)
            payload = _CORPUS[start : start + rng.randint(0, 40)]
            trace.append((now, _udp(rng.choice(sources), rng.choice(dests),
                                    rng.randint(1024, 65000),
                                    rng.choice(udp_ports), payload)))
        elif shape < 0.95:
            trace.append((now, IPPacket(
                src=rng.choice(sources), dst=rng.choice(dests),
                payload=ICMPMessage.echo_request(ident=rng.randint(1, 9),
                                                 sequence=rng.randint(0, 5)))))
        else:
            trace.append((now, IPPacket(src=rng.choice(sources),
                                        dst=rng.choice(dests),
                                        payload=bytes(rng.randint(0, 30)),
                                        protocol=47)))
    return trace


def _alert_key(alert):
    return (round(alert.time, 6), alert.sid, alert.action, alert.classtype,
            alert.src, alert.dst, alert.sport, alert.dport)


@pytest.mark.parametrize("overlap_policy", ["first", "last"])
def test_indexed_and_naive_paths_emit_identical_alert_sequences(overlap_policy):
    fast = RuleEngine.from_text(_ruleset_text(), variables=DEFAULT_VARIABLES,
                                overlap_policy=overlap_policy, use_index=True)
    naive = RuleEngine.from_text(_ruleset_text(), variables=DEFAULT_VARIABLES,
                                 overlap_policy=overlap_policy, use_index=False)
    assert fast.use_index and fast._index is not None
    assert not naive.use_index and naive._index is None

    per_packet_equal = True
    for when, packet in build_trace():
        fast_alerts = fast.process(packet, when)
        naive_alerts = naive.process(packet, when)
        if [_alert_key(a) for a in fast_alerts] != [_alert_key(a) for a in naive_alerts]:
            per_packet_equal = False

    assert per_packet_equal, "some packet produced different alerts on the two paths"
    assert [_alert_key(a) for a in fast.alerts] == [_alert_key(a) for a in naive.alerts]
    assert fast.packets_processed == naive.packets_processed
    # The trace must actually exercise the interesting machinery.
    sids_fired = {a.sid for a in naive.alerts}
    assert len(naive.alerts) >= 8
    assert 910002 in sids_fired  # bidirectional reverse dispatch
    assert 910003 in sids_fired  # enumerated port-range bucket
    assert 910005 in sids_fired  # icmp itype
    assert 910006 in sids_fired  # negated content (no anchor)
    assert any(a.sid >= 2000000 and a.sid < 2100000 for a in naive.alerts), \
        "no threshold/detection rule fired"


#: every engine configuration that must be alert-for-alert identical to
#: the naive reference scan
ENGINE_CONFIGS = [
    (True, "multipattern"),
    (True, "anchor"),
    (True, "none"),
    (False, "multipattern"),
    (False, "anchor"),
    (False, "none"),
]


def _run_single(engine, trace):
    out = []
    for when, packet in trace:
        out.extend(engine.process(packet, when))
    return out


def _run_batched(engine, trace, batch_size=7):
    """process_batch over uneven chunks, exercising batch boundaries."""
    out = []
    for start in range(0, len(trace), batch_size):
        chunk = trace[start : start + batch_size]
        for alerts in engine.process_batch(
            [packet for _when, packet in chunk],
            [when for when, _packet in chunk],
        ):
            out.extend(alerts)
    return out


@pytest.mark.parametrize("trace_name", ["handbuilt", "random"])
@pytest.mark.parametrize("batched", [False, True], ids=["single", "batch"])
@pytest.mark.parametrize("use_index,prefilter", ENGINE_CONFIGS)
def test_cross_product_equivalence(trace_name, batched, use_index, prefilter):
    """use_index × prefilter × single-vs-batch: identical alert sequences."""
    trace = build_trace() if trace_name == "handbuilt" else build_random_trace()
    reference = RuleEngine.from_text(
        _ruleset_text(), variables=DEFAULT_VARIABLES,
        use_index=False, prefilter="none",
    )
    engine = RuleEngine.from_text(
        _ruleset_text(), variables=DEFAULT_VARIABLES,
        use_index=use_index, prefilter=prefilter,
    )
    assert engine.prefilter == prefilter
    expected = _run_single(reference, trace)
    got = _run_batched(engine, trace) if batched else _run_single(engine, trace)
    assert [_alert_key(a) for a in got] == [_alert_key(a) for a in expected]
    assert [_alert_key(a) for a in engine.alerts] == \
        [_alert_key(a) for a in reference.alerts]
    assert engine.packets_processed == reference.packets_processed
    # the traces actually exercise the machinery under test
    assert len(expected) >= 8


def test_random_trace_fires_content_rules():
    """The random trace must hit literal rules (or the cross-product test
    proves nothing about the multipattern prefilter)."""
    engine = RuleEngine.from_text(_ruleset_text(), variables=DEFAULT_VARIABLES)
    for when, packet in build_random_trace():
        engine.process(packet, when)
    fired = {alert.sid for alert in engine.alerts}
    content_sids = {
        rule.sid for rule in engine.rules
        if any(not c.negated and c.pattern for c in rule.contents)
    }
    assert fired & content_sids, "no content rule fired on the random trace"


def test_process_batch_single_timestamp():
    """A scalar ``now`` applies to every packet in the batch."""
    engine = RuleEngine.from_text(_ruleset_text(), variables=DEFAULT_VARIABLES)
    reference = RuleEngine.from_text(_ruleset_text(), variables=DEFAULT_VARIABLES)
    packets = [packet for _when, packet in build_trace()[:40]]
    batch_alerts = engine.process_batch(packets, 5.0)
    single_alerts = [reference.process(packet, 5.0) for packet in packets]
    assert [[_alert_key(a) for a in alerts] for alerts in batch_alerts] == \
        [[_alert_key(a) for a in alerts] for alerts in single_alerts]


def test_equivalence_under_rule_addition():
    """add_rules must keep the index in sync with the rule list."""
    fast = RuleEngine.from_text(_ruleset_text(), variables=DEFAULT_VARIABLES)
    naive = RuleEngine.from_text(_ruleset_text(), variables=DEFAULT_VARIABLES,
                                 use_index=False)
    extra = 'alert tcp any any -> any 8443 (msg:"EQ late rule"; flags:R; sid:920000;)'
    fast.add_rules(extra)
    naive.add_rules(extra)
    for when, packet in build_trace():
        fast_alerts = fast.process(packet, when)
        naive_alerts = naive.process(packet, when)
        assert [_alert_key(a) for a in fast_alerts] == [_alert_key(a) for a in naive_alerts]
    assert 920000 in {a.sid for a in fast.alerts}
