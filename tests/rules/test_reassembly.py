"""Unit tests for TCP stream reassembly."""

import pytest

from repro.packets import ACK, FIN, IPPacket, PSH, RST, SYN, TCPSegment
from repro.rules import StreamReassembler


def seg(src, dst, sport, dport, flags, seq=0, ack=0, payload=b""):
    return IPPacket(src=src, dst=dst,
                    payload=TCPSegment(sport=sport, dport=dport, seq=seq, ack=ack,
                                       flags=flags, payload=payload))


def handshake(reasm, c="1.1.1.1", s="2.2.2.2", cp=1000, sp=80, t0=0.0):
    reasm.feed(seg(c, s, cp, sp, SYN, seq=100), t0)
    reasm.feed(seg(s, c, sp, cp, SYN | ACK, seq=500, ack=101), t0 + 0.01)
    update = reasm.feed(seg(c, s, cp, sp, ACK, seq=101, ack=501), t0 + 0.02)
    return update.flow


class TestHandshakeTracking:
    def test_establishment(self):
        reasm = StreamReassembler()
        flow = handshake(reasm)
        assert flow.syn_seen and flow.synack_seen and flow.established
        assert flow.initiator == "1.1.1.1"
        assert flow.responder == "2.2.2.2"

    def test_not_established_without_final_ack(self):
        reasm = StreamReassembler()
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, SYN, seq=100), 0)
        update = reasm.feed(seg("2.2.2.2", "1.1.1.1", 80, 1000, SYN | ACK, seq=5, ack=101), 0)
        assert not update.flow.established

    def test_mid_flow_pickup_provisional_initiator(self):
        reasm = StreamReassembler()
        update = reasm.feed(
            seg("2.2.2.2", "1.1.1.1", 80, 1000, PSH | ACK, seq=1, payload=b"data"), 0
        )
        assert update.flow.initiator == "2.2.2.2"  # first seen wins provisionally

    def test_rst_marks_flow(self):
        reasm = StreamReassembler()
        flow = handshake(reasm)
        reasm.feed(seg("2.2.2.2", "1.1.1.1", 80, 1000, RST, seq=501), 1.0)
        assert flow.reset

    def test_fin_marks_closed(self):
        reasm = StreamReassembler()
        flow = handshake(reasm)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, FIN | ACK, seq=101, ack=501), 1.0)
        assert flow.closed


class TestPayloadAssembly:
    def test_in_order_accumulation(self):
        reasm = StreamReassembler()
        flow = handshake(reasm)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101, ack=501,
                       payload=b"GET /fal"), 1.0)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=109, ack=501,
                       payload=b"un HTTP/1.1"), 1.1)
        assert flow.buffer("c2s") == b"GET /falun HTTP/1.1"

    def test_keyword_split_across_segments_visible(self):
        # The GFC reassembles; splitting a keyword across segments must not
        # evade the buffer view.
        reasm = StreamReassembler()
        flow = handshake(reasm)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101, payload=b"fal"), 1.0)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=104, payload=b"un"), 1.1)
        assert b"falun" in flow.buffer("c2s")

    def test_duplicate_segment_ignored(self):
        reasm = StreamReassembler()
        flow = handshake(reasm)
        packet = seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101, payload=b"abc")
        reasm.feed(packet, 1.0)
        update = reasm.feed(packet.copy(), 1.1)
        assert update.new_data == b""
        assert flow.buffer("c2s") == b"abc"

    def test_directions_kept_separate(self):
        reasm = StreamReassembler()
        flow = handshake(reasm)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101, payload=b"req"), 1.0)
        reasm.feed(seg("2.2.2.2", "1.1.1.1", 80, 1000, PSH | ACK, seq=501, payload=b"resp"), 1.1)
        assert flow.buffer("c2s") == b"req"
        assert flow.buffer("s2c") == b"resp"

    def test_stream_depth_cap(self):
        reasm = StreamReassembler(stream_depth=10)
        flow = handshake(reasm)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101,
                       payload=b"0123456789ABCDEF"), 1.0)
        assert len(flow.buffer("c2s")) == 10

    def test_total_bytes(self):
        reasm = StreamReassembler()
        flow = handshake(reasm)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101, payload=b"abc"), 1.0)
        assert flow.total_bytes == 3


class TestFlowLifecycle:
    def test_non_tcp_returns_none(self):
        from repro.packets import UDPDatagram

        reasm = StreamReassembler()
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=UDPDatagram(sport=1, dport=2))
        assert reasm.feed(packet, 0) is None

    def test_flush_flow(self):
        reasm = StreamReassembler()
        flow = handshake(reasm)
        reasm.flush_flow(flow.key)
        assert len(reasm.flows) == 0

    def test_expire_idle_flows(self):
        reasm = StreamReassembler()
        handshake(reasm)
        assert reasm.expire(now=100.0, idle=60.0) == 1
        assert len(reasm.flows) == 0

    def test_expire_keeps_active(self):
        reasm = StreamReassembler()
        handshake(reasm, t0=90.0)
        assert reasm.expire(now=100.0, idle=60.0) == 0

    def test_eviction_when_full(self):
        reasm = StreamReassembler(max_flows=2)
        handshake(reasm, c="1.1.1.1", t0=0.0)
        handshake(reasm, c="1.1.1.2", t0=1.0)
        handshake(reasm, c="1.1.1.3", t0=2.0)
        assert len(reasm.flows) == 2
        assert reasm.evicted_flows == 1

    def test_is_new_flow_flag(self):
        reasm = StreamReassembler()
        first = reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, SYN, seq=1), 0)
        second = reasm.feed(seg("2.2.2.2", "1.1.1.1", 80, 1000, SYN | ACK, seq=9, ack=2), 0)
        assert first.is_new_flow
        assert not second.is_new_flow
