"""Tests for reassembly overlap policies (Ptacek–Newsham discrepancies)."""

import pytest

from repro.packets import ACK, IPPacket, PSH, SYN, TCPSegment
from repro.rules import RuleEngine, StreamReassembler


def seg(src, dst, sport, dport, flags, seq=0, ack=0, payload=b""):
    return IPPacket(src=src, dst=dst,
                    payload=TCPSegment(sport=sport, dport=dport, seq=seq, ack=ack,
                                       flags=flags, payload=payload))


def handshaken(reasm):
    reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, SYN, seq=100), 0.0)
    reasm.feed(seg("2.2.2.2", "1.1.1.1", 80, 1000, SYN | ACK, seq=500, ack=101), 0.0)
    update = reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, ACK, seq=101, ack=501), 0.0)
    return update.flow


class TestPolicies:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            StreamReassembler(overlap_policy="random")

    def test_first_wins_keeps_original(self):
        reasm = StreamReassembler(overlap_policy="first")
        flow = handshaken(reasm)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101,
                       payload=b"ORIGINAL"), 0.0)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101,
                       payload=b"OVERWRIT"), 0.0)
        assert flow.buffer("c2s") == b"ORIGINAL"

    def test_last_wins_overwrites(self):
        reasm = StreamReassembler(overlap_policy="last")
        flow = handshaken(reasm)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101,
                       payload=b"ORIGINAL"), 0.0)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101,
                       payload=b"OVERWRIT"), 0.0)
        assert flow.buffer("c2s") == b"OVERWRIT"

    def test_last_wins_partial_overlap(self):
        reasm = StreamReassembler(overlap_policy="last")
        flow = handshaken(reasm)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101,
                       payload=b"AAAABBBB"), 0.0)
        # Overwrite only the middle four bytes.
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=103,
                       payload=b"XXXX"), 0.0)
        assert flow.buffer("c2s") == b"AAXXXXBB"

    def test_last_wins_overlap_before_buffer_start_clipped(self):
        reasm = StreamReassembler(overlap_policy="last")
        flow = handshaken(reasm)
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=101,
                       payload=b"DATA"), 0.0)
        # Retransmission starting before the buffered window.
        reasm.feed(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK, seq=99,
                       payload=b"..ZZ"), 0.0)
        assert flow.buffer("c2s") == b"ZZTA"


class TestPolicyDiscrepancy:
    def _run_engine(self, policy):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any 80 (msg:"kw"; content:"falun"; sid:1;)',
            overlap_policy=policy,
        )
        alerts = []
        alerts += engine.process(seg("1.1.1.1", "2.2.2.2", 1000, 80, SYN, seq=100), 0.0)
        alerts += engine.process(seg("2.2.2.2", "1.1.1.1", 80, 1000, SYN | ACK,
                                     seq=500, ack=101), 0.0)
        alerts += engine.process(seg("1.1.1.1", "2.2.2.2", 1000, 80, ACK,
                                     seq=101, ack=501), 0.0)
        # Innocuous bytes first, then a 'retransmission' carrying the keyword.
        alerts += engine.process(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK,
                                     seq=101, payload=b"xxxxx"), 0.0)
        alerts += engine.process(seg("1.1.1.1", "2.2.2.2", 1000, 80, PSH | ACK,
                                     seq=101, payload=b"falun"), 0.0)
        return alerts

    def test_first_wins_engine_blind_to_retransmitted_keyword(self):
        """An IDS with BSD semantics never sees keyword bytes smuggled as a
        retransmission — the evasion half of Ptacek–Newsham."""
        assert self._run_engine("first") == []

    def test_last_wins_engine_catches_it(self):
        alerts = self._run_engine("last")
        assert [a.sid for a in alerts] == [1]
