"""Unit tests for the rule-evaluation engine."""

import pytest

from repro.packets import ACK, ICMPMessage, IPPacket, PSH, RST, SYN, TCPSegment, UDPDatagram
from repro.rules import RuleEngine


def tcp(src, dst, sport, dport, flags, seq=0, ack=0, payload=b""):
    return IPPacket(src=src, dst=dst,
                    payload=TCPSegment(sport=sport, dport=dport, seq=seq, ack=ack,
                                       flags=flags, payload=payload))


def http_flow(engine, payload, c="10.1.0.5", s="203.0.113.10", cp=40000, sp=80, t0=0.0):
    """Run a full handshake + request through the engine; return all alerts."""
    alerts = []
    alerts += engine.process(tcp(c, s, cp, sp, SYN, seq=100), t0)
    alerts += engine.process(tcp(s, c, sp, cp, SYN | ACK, seq=500, ack=101), t0 + 0.01)
    alerts += engine.process(tcp(c, s, cp, sp, ACK, seq=101, ack=501), t0 + 0.02)
    alerts += engine.process(
        tcp(c, s, cp, sp, PSH | ACK, seq=101, ack=501, payload=payload), t0 + 0.03
    )
    return alerts


class TestHeaderMatching:
    def test_protocol_filtering(self):
        engine = RuleEngine.from_text(
            'alert udp any any -> any 53 (msg:"dns"; sid:1;)'
        )
        tcp_packet = tcp("1.1.1.1", "2.2.2.2", 5, 53, SYN)
        udp_packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                              payload=UDPDatagram(sport=5, dport=53, payload=b"x"))
        assert engine.process(tcp_packet, 0) == []
        assert len(engine.process(udp_packet, 0)) == 1

    def test_ip_protocol_matches_everything(self):
        engine = RuleEngine.from_text('alert ip any any -> any any (msg:"all"; sid:1;)')
        assert engine.process(tcp("1.1.1.1", "2.2.2.2", 1, 2, SYN), 0)
        icmp = IPPacket(src="1.1.1.1", dst="2.2.2.2", payload=ICMPMessage.echo_request())
        assert engine.process(icmp, 0)

    def test_port_matching(self):
        engine = RuleEngine.from_text('alert tcp any any -> any 80 (msg:"web"; sid:1;)')
        assert engine.process(tcp("1.1.1.1", "2.2.2.2", 5, 80, SYN), 0)
        assert not engine.process(tcp("1.1.1.1", "2.2.2.2", 5, 81, SYN), 0)

    def test_bidirectional_rule(self):
        engine = RuleEngine.from_text('alert tcp any any <> any 80 (msg:"bi"; sid:1;)')
        assert engine.process(tcp("1.1.1.1", "2.2.2.2", 5, 80, SYN), 0)
        assert engine.process(tcp("2.2.2.2", "1.1.1.1", 80, 5, SYN | ACK), 0)

    def test_directional_rule_ignores_reverse(self):
        engine = RuleEngine.from_text('alert tcp any any -> any 80 (msg:"fw"; sid:1;)')
        assert not engine.process(tcp("2.2.2.2", "1.1.1.1", 80, 5, SYN | ACK), 0)

    def test_source_network_constraint(self):
        engine = RuleEngine.from_text(
            'alert tcp 10.1.0.0/16 any -> any any (msg:"home"; sid:1;)'
        )
        assert engine.process(tcp("10.1.9.9", "2.2.2.2", 1, 2, SYN), 0)
        assert not engine.process(tcp("192.0.2.1", "2.2.2.2", 1, 2, SYN), 0)


class TestPayloadMatching:
    def test_content_on_stream(self):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any 80 (msg:"kw"; content:"falun"; sid:1;)'
        )
        alerts = http_flow(engine, b"GET /falun HTTP/1.1\r\n\r\n")
        assert [a.sid for a in alerts] == [1]

    def test_content_split_across_segments_detected(self):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any 80 (msg:"kw"; content:"falun"; sid:1;)'
        )
        alerts = []
        alerts += http_flow(engine, b"GET /fal")
        alerts += engine.process(
            tcp("10.1.0.5", "203.0.113.10", 40000, 80, PSH | ACK,
                seq=101 + 8, ack=501, payload=b"un HTTP/1.1"), 0.05
        )
        assert [a.sid for a in alerts] == [1]

    def test_stream_alert_fires_once_per_flow(self):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any 80 (msg:"kw"; content:"falun"; sid:1;)'
        )
        alerts = http_flow(engine, b"falun")
        # More data on the same flow must not re-alert.
        alerts += engine.process(
            tcp("10.1.0.5", "203.0.113.10", 40000, 80, PSH | ACK,
                seq=106, ack=501, payload=b"more falun data"), 1.0
        )
        assert len(alerts) == 1

    def test_flags_option(self):
        engine = RuleEngine.from_text('alert tcp any any -> any any (flags:S; msg:"syn"; sid:1;)')
        assert engine.process(tcp("1.1.1.1", "2.2.2.2", 1, 2, SYN), 0)
        assert not engine.process(tcp("1.1.1.1", "2.2.2.2", 1, 2, SYN | ACK), 0)

    def test_dsize_option(self):
        engine = RuleEngine.from_text(
            'alert udp any any -> any any (dsize:>10; msg:"big"; sid:1;)'
        )
        small = IPPacket(src="1.1.1.1", dst="2.2.2.2", payload=UDPDatagram(sport=1, dport=2, payload=b"short"))
        big = IPPacket(src="1.1.1.1", dst="2.2.2.2", payload=UDPDatagram(sport=1, dport=2, payload=b"x" * 20))
        assert not engine.process(small, 0)
        assert engine.process(big, 0)

    def test_itype(self):
        engine = RuleEngine.from_text('alert icmp any any -> any any (itype:8; msg:"ping"; sid:1;)')
        ping = IPPacket(src="1.1.1.1", dst="2.2.2.2", payload=ICMPMessage.echo_request())
        pong = IPPacket(src="1.1.1.1", dst="2.2.2.2", payload=ICMPMessage(icmp_type=0))
        assert engine.process(ping, 0)
        assert not engine.process(pong, 0)


class TestFlowOptions:
    def test_established_requires_handshake(self):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any 80 (msg:"est"; content:"x"; flow:established; sid:1;)'
        )
        # Data without a handshake: flow exists but not established.
        alerts = engine.process(
            tcp("1.1.1.1", "2.2.2.2", 5, 80, PSH | ACK, seq=1, payload=b"x"), 0
        )
        assert alerts == []
        alerts = http_flow(engine, b"x", c="3.3.3.3")
        assert len(alerts) == 1

    def test_to_server_direction(self):
        engine = RuleEngine.from_text(
            'alert tcp any any <> any any (msg:"up"; content:"data"; flow:to_server; sid:1;)'
        )
        alerts = http_flow(engine, b"data")
        # server->client data should not fire
        alerts += engine.process(
            tcp("203.0.113.10", "10.1.0.5", 80, 40000, PSH | ACK, seq=501, ack=109,
                payload=b"data"), 0.1
        )
        assert len(alerts) == 1

    def test_stateless_matches_anything(self):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any any (msg:"sl"; flags:S; flow:stateless; sid:1;)'
        )
        assert engine.process(tcp("1.1.1.1", "2.2.2.2", 1, 2, SYN), 0)


class TestThresholds:
    def test_both_fires_once_at_count(self):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any any (msg:"scan"; flags:S; '
            "threshold: type both, track by_src, count 5, seconds 10; sid:1;)"
        )
        alerts = []
        for i in range(8):
            alerts += engine.process(tcp("1.1.1.1", "2.2.2.2", 100 + i, i + 1, SYN), i * 0.1)
        assert len(alerts) == 1

    def test_both_refires_next_window(self):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any any (msg:"scan"; flags:S; '
            "threshold: type both, track by_src, count 3, seconds 1; sid:1;)"
        )
        alerts = []
        for i in range(3):
            alerts += engine.process(tcp("1.1.1.1", "2.2.2.2", 100 + i, 1, SYN), i * 0.1)
        for i in range(3):
            alerts += engine.process(tcp("1.1.1.1", "2.2.2.2", 200 + i, 1, SYN), 10 + i * 0.1)
        assert len(alerts) == 2

    def test_tracking_by_src_separates_sources(self):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any any (msg:"scan"; flags:S; '
            "threshold: type both, track by_src, count 4, seconds 10; sid:1;)"
        )
        alerts = []
        for i in range(3):
            alerts += engine.process(tcp("1.1.1.1", "9.9.9.9", 100 + i, 1, SYN), i * 0.01)
        for i in range(3):
            alerts += engine.process(tcp("2.2.2.2", "9.9.9.9", 100 + i, 1, SYN), i * 0.01)
        assert alerts == []  # neither source reached 4

    def test_limit_mutes_after_count(self):
        engine = RuleEngine.from_text(
            'alert tcp any any -> any any (msg:"lim"; flags:S; '
            "threshold: type limit, track by_src, count 2, seconds 100; sid:1;)"
        )
        alerts = []
        for i in range(6):
            alerts += engine.process(tcp("1.1.1.1", "2.2.2.2", 100 + i, 1, SYN), i * 0.1)
        assert len(alerts) == 2


class TestActionsAndOrdering:
    def test_pass_rule_suppresses_alerts(self):
        engine = RuleEngine.from_text(
            'pass tcp 10.0.0.1 any -> any any (msg:"whitelist"; sid:1;)\n'
            'alert tcp any any -> any any (msg:"catchall"; flags:S; sid:2;)'
        )
        assert engine.process(tcp("10.0.0.1", "2.2.2.2", 1, 2, SYN), 0) == []
        assert engine.process(tcp("10.0.0.2", "2.2.2.2", 1, 2, SYN), 0)

    def test_alert_records_metadata(self):
        engine = RuleEngine.from_text(
            'reject tcp any any -> any 80 (msg:"kw"; content:"bad"; '
            "classtype:censorship; priority:1; sid:42;)"
        )
        alerts = http_flow(engine, b"bad request")
        alert = alerts[0]
        assert alert.sid == 42
        assert alert.action == "reject"
        assert alert.classtype == "censorship"
        assert alert.src == "10.1.0.5"
        assert alert.dport == 80
        assert "42" in str(alert)

    def test_alert_log_accumulates(self):
        engine = RuleEngine.from_text('alert tcp any any -> any any (flags:S; msg:"s"; sid:1;)')
        engine.process(tcp("1.1.1.1", "2.2.2.2", 1, 2, SYN), 0)
        engine.process(tcp("1.1.1.1", "2.2.2.2", 2, 3, SYN), 1)
        assert len(engine.alerts) == 2
        assert engine.packets_processed == 2

    def test_add_rules_and_rule_by_sid(self):
        engine = RuleEngine.from_text('alert tcp any any -> any any (flags:S; msg:"a"; sid:1;)')
        engine.add_rules('alert udp any any -> any 53 (msg:"b"; sid:2;)')
        assert engine.rule_by_sid(2).msg == "b"
        assert engine.rule_by_sid(99) is None
