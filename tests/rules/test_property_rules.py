"""Property-based tests for the rule engine's matchers and reassembly."""

import string

from hypothesis import assume, given, settings, strategies as st

from repro.packets import ACK, IPPacket, PSH, SYN, TCPSegment
from repro.rules import ContentOption, PortSpec, RuleEngine, StreamReassembler
from repro.rules.matcher import DsizeOption, FlagsOption

payload_bytes = st.binary(min_size=0, max_size=200)
needles = st.binary(min_size=1, max_size=10)


class TestContentProperties:
    @given(haystack=payload_bytes, needle=needles)
    def test_matches_iff_substring(self, haystack, needle):
        option = ContentOption(pattern=needle)
        assert option.matches(haystack) == (needle in haystack)

    @given(haystack=payload_bytes, needle=needles)
    def test_nocase_superset_of_case_sensitive(self, haystack, needle):
        sensitive = ContentOption(pattern=needle)
        insensitive = ContentOption(pattern=needle, nocase=True)
        if sensitive.matches(haystack):
            assert insensitive.matches(haystack)

    @given(haystack=payload_bytes, needle=needles)
    def test_negation_is_complement(self, haystack, needle):
        positive = ContentOption(pattern=needle)
        negative = ContentOption(pattern=needle, negated=True)
        assert positive.matches(haystack) != negative.matches(haystack)

    @given(haystack=payload_bytes, needle=needles,
           offset=st.integers(0, 50), depth=st.integers(1, 100))
    def test_offset_depth_window_semantics(self, haystack, needle, offset, depth):
        option = ContentOption(pattern=needle, offset=offset, depth=depth)
        window = haystack[offset : offset + depth]
        assert option.matches(haystack) == (needle in window)

    @given(text=st.text(alphabet=string.printable.replace("|", ""), max_size=30))
    def test_parse_pattern_plain_text_identity(self, text):
        assert ContentOption.parse_pattern(text) == text.encode("latin-1")

    @given(blob=st.binary(min_size=1, max_size=20))
    def test_parse_pattern_hex_round_trip(self, blob):
        hex_text = "|" + " ".join(f"{b:02x}" for b in blob) + "|"
        assert ContentOption.parse_pattern(hex_text) == blob


class TestPortSpecProperties:
    @given(port=st.integers(0, 65535))
    def test_any_matches_all(self, port):
        assert PortSpec.parse("any").matches(port)

    @given(lo=st.integers(0, 65535), hi=st.integers(0, 65535),
           port=st.integers(0, 65535))
    def test_range_semantics(self, lo, hi, port):
        assume(lo <= hi)
        spec = PortSpec.parse(f"{lo}:{hi}")
        assert spec.matches(port) == (lo <= port <= hi)

    @given(port=st.integers(0, 65535), probe=st.integers(0, 65535))
    def test_negation_complement(self, port, probe):
        positive = PortSpec.parse(str(port))
        negative = PortSpec.parse(f"!{port}")
        assert positive.matches(probe) != negative.matches(probe)


class TestDsizeProperties:
    @given(size=st.integers(0, 10000), threshold=st.integers(0, 10000))
    def test_greater_less_partition(self, size, threshold):
        greater = DsizeOption.parse(f">{threshold}")
        less = DsizeOption.parse(f"<{threshold}")
        exact = DsizeOption.parse(str(threshold))
        assert greater.matches(size) + less.matches(size) + exact.matches(size) == 1


class TestFlagsProperties:
    @given(flags=st.integers(0, 0x3F))
    def test_plus_mode_subset(self, flags):
        option = FlagsOption.parse("S+")
        assert option.matches(flags) == bool(flags & 0x02 == 0x02)

    @given(flags=st.integers(0, 0x3F))
    def test_not_mode_complement_of_plus(self, flags):
        plus = FlagsOption.parse("R+")
        negated = FlagsOption.parse("!R")
        assert plus.matches(flags) != negated.matches(flags)


class TestReassemblyProperties:
    @settings(max_examples=50, deadline=None)
    @given(payload=st.binary(min_size=1, max_size=300),
           cut_points=st.lists(st.integers(1, 299), max_size=5, unique=True),
           data=st.data())
    def test_any_segmentation_yields_same_stream(self, payload, cut_points, data):
        """However a sender fragments its bytes, the reassembled buffer is
        identical — the keyword censor cannot be evaded by splitting."""
        cuts = sorted({c for c in cut_points if c < len(payload)})
        pieces = []
        last = 0
        for cut in cuts + [len(payload)]:
            if cut > last:
                pieces.append(payload[last:cut])
                last = cut

        reasm = StreamReassembler()
        client, server = "10.0.0.1", "10.0.0.2"
        reasm.feed(_seg(client, server, SYN, seq=100), 0.0)
        reasm.feed(_seg(server, client, SYN | ACK, seq=500, ack=101, sport=80, dport=999), 0.0)
        update = reasm.feed(_seg(client, server, ACK, seq=101, ack=501), 0.0)
        seq = 101
        for piece in pieces:
            update = reasm.feed(
                _seg(client, server, PSH | ACK, seq=seq, ack=501, payload=piece), 0.0
            )
            seq += len(piece)
        assert update.flow.buffer("c2s") == payload

    @settings(max_examples=30, deadline=None)
    @given(keyword_pos=st.integers(0, 50), chunk=st.integers(1, 8))
    def test_engine_detects_keyword_any_chunking(self, keyword_pos, chunk):
        payload = b"x" * keyword_pos + b"falun" + b"y" * 10
        engine = RuleEngine.from_text(
            'alert tcp any any -> any any (msg:"kw"; content:"falun"; sid:1;)'
        )
        client, server = "10.0.0.1", "10.0.0.2"
        engine.process(_seg(client, server, SYN, seq=100), 0.0)
        engine.process(_seg(server, client, SYN | ACK, seq=500, ack=101, sport=80, dport=999), 0.0)
        engine.process(_seg(client, server, ACK, seq=101, ack=501), 0.0)
        alerts = []
        seq = 101
        for start in range(0, len(payload), chunk):
            piece = payload[start : start + chunk]
            alerts += engine.process(
                _seg(client, server, PSH | ACK, seq=seq, ack=501, payload=piece), 0.0
            )
            seq += len(piece)
        assert len(alerts) == 1


def _seg(src, dst, flags, seq=0, ack=0, payload=b"", sport=999, dport=80):
    if src == "10.0.0.2":
        pass  # server side already carries its own ports via kwargs
    return IPPacket(
        src=src, dst=dst,
        payload=TCPSegment(sport=sport, dport=dport, seq=seq, ack=ack,
                           flags=flags, payload=payload),
    )
