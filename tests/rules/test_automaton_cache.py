"""The process-wide shared automaton cache and its copy-on-write contract.

Sweep workers persist across points and rebuild identical rulesets per
point; ``shared_automaton`` turns every rebuild after the first into a
dict lookup.  Sharing is only sound if (a) scans never mutate a
finalized automaton, and (b) an engine that *extends* its ruleset
replaces the shared instance instead of editing it under its siblings —
with a version that still invalidates saved stream-scan states.
"""

import pytest

from repro.rules import DEFAULT_VARIABLES, RuleEngine, parse_ruleset
from repro.rules.multipattern import (
    MultiPatternAutomaton,
    StreamScanState,
    clear_automaton_cache,
    shared_automaton,
)
from repro.rules.rulesets import censor_ruleset_text, mvr_detection_ruleset_text

EXTRA_RULE = (
    'alert tcp any any -> any 8081 '
    '(msg:"CACHE cowtest"; content:"cowtest-needle"; sid:990001;)'
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_automaton_cache()
    yield
    clear_automaton_cache()


def censor_rules():
    return parse_ruleset(censor_ruleset_text(), dict(DEFAULT_VARIABLES))


class TestSharedAutomaton:
    def test_same_ruleset_shares_one_instance(self):
        first = shared_automaton(censor_rules())
        second = shared_automaton(censor_rules())
        assert first is second
        assert first.shared

    def test_cache_key_is_the_literal_set(self):
        """Two textually different rulesets with identical content
        literals share an automaton — matching depends on literals only."""
        base = parse_ruleset(
            'alert tcp any any -> any 80 (msg:"a"; content:"needle-x"; sid:1;)',
            {},
        )
        reordered = parse_ruleset(
            'alert tcp any any -> any 443 (msg:"b"; content:"needle-x"; sid:2;)',
            {},
        )
        assert shared_automaton(base) is shared_automaton(reordered)

    def test_distinct_literal_sets_do_not_collide(self):
        censor = shared_automaton(censor_rules())
        mvr = shared_automaton(
            parse_ruleset(mvr_detection_ruleset_text(), dict(DEFAULT_VARIABLES))
        )
        assert censor is not mvr

    def test_returned_automaton_is_finalized(self):
        automaton = shared_automaton(censor_rules())
        assert automaton.version >= 1
        assert automaton.ensure_ready() == automaton.version  # no re-finalize

    def test_clear_reports_and_empties(self):
        shared_automaton(censor_rules())
        assert clear_automaton_cache() == 1
        assert clear_automaton_cache() == 0
        rebuilt = shared_automaton(censor_rules())
        assert rebuilt.shared

    def test_scan_matches_naive_reference(self):
        automaton = shared_automaton(censor_rules())
        for haystack in (
            b"GET / HTTP/1.1\r\nHost: twitter.com\r\n\r\n",
            b"no signatures at all " * 20,
            b"\x13BitTorrent protocol" + b"\x00" * 48,
        ):
            assert automaton.scan(haystack) == automaton.naive_present(haystack)


class TestEngineIntegration:
    def test_engines_from_same_text_share(self):
        text = censor_ruleset_text()
        first = RuleEngine.from_text(text, variables=DEFAULT_VARIABLES)
        second = RuleEngine.from_text(text, variables=DEFAULT_VARIABLES)
        assert first._mp is second._mp

    def test_add_rules_copies_before_writing(self):
        text = censor_ruleset_text()
        extender = RuleEngine.from_text(text, variables=DEFAULT_VARIABLES)
        bystander = RuleEngine.from_text(text, variables=DEFAULT_VARIABLES)
        original = extender._mp
        known_before = original.known_ids()

        extender.add_rules(EXTRA_RULE)

        assert extender._mp is not original, "shared automaton extended in place"
        assert not extender._mp.shared
        assert bystander._mp is original
        assert original.known_ids() == known_before

    def test_replacement_covers_the_full_ruleset(self):
        extender = RuleEngine.from_text(
            censor_ruleset_text(), variables=DEFAULT_VARIABLES
        )
        extender.add_rules(EXTRA_RULE)
        haystack = b"GET /cowtest-needle HTTP/1.1\r\nHost: twitter.com\r\n\r\n"
        present = extender._mp.scan(haystack)
        assert present == extender._mp.naive_present(haystack)
        assert len(extender._mp) > len(shared_automaton(censor_rules()))

    def test_replacement_version_invalidates_saved_stream_states(self):
        """A per-flow scan state saved against the shared automaton must
        compare stale against the private replacement, or stale DFA walks
        would resume silently."""
        extender = RuleEngine.from_text(
            censor_ruleset_text(), variables=DEFAULT_VARIABLES
        )
        stale = StreamScanState(extender._mp.ensure_ready(), content_version=0)
        extender.add_rules(EXTRA_RULE)
        assert extender._mp.ensure_ready() > stale.automaton_version

    def test_second_extension_stays_private_and_incremental(self):
        extender = RuleEngine.from_text(
            censor_ruleset_text(), variables=DEFAULT_VARIABLES
        )
        extender.add_rules(EXTRA_RULE)
        replacement = extender._mp
        extender.add_rules(
            'alert tcp any any -> any 8082 '
            '(msg:"CACHE two"; content:"second-needle"; sid:990002;)'
        )
        assert extender._mp is replacement  # private now; extended in place

    def test_cached_engine_still_alerts(self):
        """End to end: a second engine built from the cache detects the
        same traffic the first does."""
        from repro.packets import ACK, IPPacket, PSH, SYN, TCPSegment

        def tcp(src, dst, sport, dport, flags, seq=0, ack=0, payload=b""):
            return IPPacket(src=src, dst=dst, payload=TCPSegment(
                sport=sport, dport=dport, seq=seq, ack=ack,
                flags=flags, payload=payload,
            ))

        text = censor_ruleset_text()
        RuleEngine.from_text(text, variables=DEFAULT_VARIABLES)  # warm
        engine = RuleEngine.from_text(text, variables=DEFAULT_VARIABLES)
        client, server = "10.1.0.5", "203.0.113.10"
        alerts = []
        alerts += engine.process(tcp(client, server, 40000, 80, SYN, seq=100), 0.0)
        alerts += engine.process(
            tcp(server, client, 80, 40000, SYN | ACK, seq=500, ack=101), 0.01
        )
        alerts += engine.process(
            tcp(client, server, 40000, 80, ACK, seq=101, ack=501), 0.02
        )
        alerts += engine.process(
            tcp(client, server, 40000, 80, PSH | ACK, seq=101, ack=501,
                payload=b"GET / HTTP/1.1\r\nHost: twitter.com\r\n\r\n"),
            0.03,
        )
        assert alerts, "cached-automaton engine raised no alerts"


class TestAutomatonSharedFlagDefault:
    def test_privately_built_automatons_are_not_shared(self):
        automaton = MultiPatternAutomaton()
        automaton.add_rules(censor_rules())
        assert not automaton.shared
