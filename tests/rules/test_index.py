"""Unit tests for the rule dispatch index and its supporting machinery."""

from repro.packets import ICMPMessage, IPPacket, PSH, ACK, SYN, TCPSegment, UDPDatagram
from repro.rules import MatchContext, RuleDispatchIndex, RuleEngine, parse_ruleset
from repro.rules.engine import _ThresholdState
from repro.rules.language import ThresholdSpec


def _rules(text):
    return parse_ruleset(text, {})


def _candidate_sids(index, packet):
    ctx = MatchContext(packet, None)
    return [r.sid for r in index.candidates(packet.protocol, ctx.dport, ctx.sport)]


def _tcp_packet(dport=80, sport=40000, payload=b"x", flags=PSH | ACK):
    return IPPacket(src="10.0.0.1", dst="203.0.113.1",
                    payload=TCPSegment(sport=sport, dport=dport, flags=flags,
                                       payload=payload))


RULESET = "\n".join([
    'alert tcp any any -> any 80 (msg:"http"; content:"GET"; sid:1;)',
    'alert tcp any any -> any 443 (msg:"tls"; sid:2;)',
    'alert tcp any any -> any any (msg:"tcp any"; flags:S; sid:3;)',
    'alert tcp any any -> any !80 (msg:"not 80"; sid:4;)',
    'alert udp any any -> any 53 (msg:"dns"; sid:5;)',
    'alert icmp any any -> any any (msg:"icmp"; sid:6;)',
    'alert ip any any -> any any (msg:"ip any"; dsize:>1000; sid:7;)',
    'alert tcp any any -> any [6881:6889] (msg:"bt range"; sid:8;)',
    'alert tcp any any <> any 4444 (msg:"bidir"; sid:9;)',
])


def test_port_bucket_contains_only_relevant_rules_in_order():
    index = RuleDispatchIndex(_rules(RULESET))
    sids = _candidate_sids(index, _tcp_packet(dport=80))
    # Exact-port rule, plus every catch-all (any / negated port / ip rules),
    # in original ruleset order.
    assert sids == [1, 3, 4, 7]


def test_catch_all_used_for_unindexed_port():
    index = RuleDispatchIndex(_rules(RULESET))
    sids = _candidate_sids(index, _tcp_packet(dport=12345))
    assert sids == [3, 4, 7]


def test_port_range_is_enumerated_into_buckets():
    index = RuleDispatchIndex(_rules(RULESET))
    for port in (6881, 6885, 6889):
        assert 8 in _candidate_sids(index, _tcp_packet(dport=port))
    assert 8 not in _candidate_sids(index, _tcp_packet(dport=6890))


def test_bidirectional_rule_reachable_via_source_port():
    index = RuleDispatchIndex(_rules(RULESET))
    # Reverse direction: the server on 4444 replies, so 4444 is the sport.
    sids = _candidate_sids(index, _tcp_packet(dport=40000, sport=4444))
    assert 9 in sids
    # Order numbers keep the merged list in ruleset order.
    assert sids == sorted(sids)


def test_udp_and_icmp_tables_are_separate():
    index = RuleDispatchIndex(_rules(RULESET))
    udp = IPPacket(src="10.0.0.1", dst="8.8.8.8",
                   payload=UDPDatagram(sport=1000, dport=53, payload=b"q"))
    icmp = IPPacket(src="10.0.0.1", dst="8.8.8.8",
                    payload=ICMPMessage.echo_request())
    assert _candidate_sids(index, udp) == [5, 7]
    assert _candidate_sids(index, icmp) == [6, 7]


def test_unknown_protocol_sees_only_ip_rules():
    index = RuleDispatchIndex(_rules(RULESET))
    gre = IPPacket(src="10.0.0.1", dst="8.8.8.8", payload=b"\x00" * 8, protocol=47)
    assert _candidate_sids(index, gre) == [7]


def test_negated_and_wide_port_specs_fall_back_to_catch_all():
    text = "\n".join([
        'alert tcp any any -> any !80 (msg:"neg"; sid:10;)',
        'alert tcp any any -> any [1:10000] (msg:"wide"; sid:11;)',
    ])
    index = RuleDispatchIndex(_rules(text))
    # Both specs are unenumerable, so they appear for every port.
    assert _candidate_sids(index, _tcp_packet(dport=9)) == [10, 11]
    assert _candidate_sids(index, _tcp_packet(dport=31337)) == [10, 11]


def test_add_extends_existing_buckets():
    index = RuleDispatchIndex(_rules(RULESET))
    index.add(_rules('alert tcp any any -> any 80 (msg:"late"; sid:99;)'))
    sids = _candidate_sids(index, _tcp_packet(dport=80))
    assert sids == [1, 3, 4, 7, 99]


def test_rule_by_sid_tracks_add_rules():
    engine = RuleEngine.from_text(RULESET)
    assert engine.rule_by_sid(5).msg == "dns"
    assert engine.rule_by_sid(12345) is None
    engine.add_rules('alert tcp any any -> any 80 (msg:"late"; sid:99;)')
    assert engine.rule_by_sid(99).msg == "late"


def test_match_context_haystack_prefers_stream_buffer():
    engine = RuleEngine.from_text('alert tcp any any -> any 80 '
                                  '(msg:"kw"; content:"falun"; sid:50;)')
    alerts = []
    handshake = [
        _tcp_packet(flags=SYN, payload=b""),
        IPPacket(src="203.0.113.1", dst="10.0.0.1",
                 payload=TCPSegment(sport=80, dport=40000, seq=500, ack=1,
                                    flags=SYN | ACK)),
    ]
    for i, pkt in enumerate(handshake):
        alerts += engine.process(pkt, i * 0.01)
    # Keyword split across two segments only matches via the stream buffer.
    seg1 = IPPacket(src="10.0.0.1", dst="203.0.113.1",
                    payload=TCPSegment(sport=40000, dport=80, seq=1, ack=501,
                                       flags=PSH | ACK, payload=b"fal"))
    seg2 = IPPacket(src="10.0.0.1", dst="203.0.113.1",
                    payload=TCPSegment(sport=40000, dport=80, seq=4, ack=501,
                                       flags=PSH | ACK, payload=b"un"))
    alerts += engine.process(seg1, 0.1)
    assert not alerts
    alerts += engine.process(seg2, 0.2)
    assert [a.sid for a in alerts] == [50]


def test_anchor_literal_prefers_longest_non_negated_content():
    rule = _rules('alert tcp any any -> any 80 '
                  '(msg:"m"; content:"ab"; content:"longer-literal"; '
                  'content:!"absent"; sid:60;)')[0]
    needle, nocase = rule.anchor_literal()
    assert needle == b"longer-literal"
    assert nocase is False
    # No positive contents -> no anchor.
    neg = _rules('alert tcp any any -> any 80 (msg:"m"; content:!"x"; sid:61;)')[0]
    assert neg.anchor_literal() is None


def test_anchor_literal_nocase_is_lowered():
    rule = _rules('alert tcp any any -> any 80 '
                  '(msg:"m"; content:"MiXeD"; nocase; sid:62;)')[0]
    needle, nocase = rule.anchor_literal()
    assert needle == b"mixed"
    assert nocase is True


def test_threshold_state_prunes_stale_keys():
    state = _ThresholdState()
    spec = ThresholdSpec(kind="both", track="by_src", count=3, seconds=10.0)
    for i in range(3):
        state.should_alert(spec, 100, "10.0.0.1", float(i))
    assert state.tracked_keys() == 1
    # Within the window nothing is pruned; past it the key disappears.
    assert state.prune(now=5.0) == 0
    assert state.prune(now=100.0) == 1
    assert state.tracked_keys() == 0
    # A pruned key behaves exactly like a fresh one.
    fired = [state.should_alert(spec, 100, "10.0.0.1", 200.0 + i) for i in range(3)]
    assert fired == [False, False, True]
