"""Unit tests for the rule-language parser."""

import pytest

from repro.rules import RuleParseError, ThresholdSpec, parse_rule, parse_ruleset


GOOD = 'alert tcp any any -> any 80 (msg:"test rule"; content:"abc"; sid:1; rev:2;)'


class TestHeaderParsing:
    def test_basic_fields(self):
        rule = parse_rule(GOOD)
        assert rule.action == "alert"
        assert rule.protocol == "tcp"
        assert rule.msg == "test rule"
        assert rule.sid == 1
        assert rule.rev == 2
        assert not rule.bidirectional

    def test_bidirectional(self):
        rule = parse_rule('alert tcp any any <> any any (msg:"x"; sid:2;)')
        assert rule.bidirectional

    def test_all_actions(self):
        for action in ("alert", "log", "pass", "drop", "reject"):
            rule = parse_rule(f'{action} tcp any any -> any any (msg:"x"; sid:3;)')
            assert rule.action == action

    def test_unknown_action_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule('explode tcp any any -> any any (sid:1;)')

    def test_unknown_protocol_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert sctp any any -> any any (sid:1;)')

    def test_bad_direction_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any >> any any (sid:1;)')

    def test_missing_options_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule("alert tcp any any -> any any")

    def test_missing_sid_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (msg:"no sid";)')

    def test_variables_in_header(self):
        rule = parse_rule(
            'alert tcp $HOME_NET any -> $EXTERNAL_NET 80 (msg:"v"; sid:4;)',
            {"HOME_NET": "10.1.0.0/16", "EXTERNAL_NET": "any"},
        )
        assert rule.src.matches("10.1.2.3")
        assert rule.dst.any


class TestOptionParsing:
    def test_content_with_modifiers(self):
        rule = parse_rule(
            'alert tcp any any -> any any (msg:"m"; content:"Host\\: x.com"; '
            "nocase; offset:4; depth:100; sid:5;)"
        )
        content = rule.contents[0]
        assert content.nocase
        assert content.offset == 4
        assert content.depth == 100
        assert content.pattern == b"Host: x.com"

    def test_multiple_contents(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"a"; content:"b"; sid:6;)'
        )
        assert len(rule.contents) == 2

    def test_negated_content(self):
        rule = parse_rule('alert tcp any any -> any any (content:!"evil"; sid:7;)')
        assert rule.contents[0].negated

    def test_modifier_without_content_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (nocase; sid:8;)')

    def test_pcre(self):
        rule = parse_rule('alert tcp any any -> any any (pcre:"/fal+un/i"; sid:9;)')
        assert rule.pcres[0].matches(b"FALLLUN")

    def test_flags(self):
        rule = parse_rule('alert tcp any any -> any any (flags:S; sid:10;)')
        assert rule.flags.matches(0x02)

    def test_dsize(self):
        rule = parse_rule('alert tcp any any -> any any (dsize:>100; sid:11;)')
        assert rule.dsize.matches(200)

    def test_itype_icode(self):
        rule = parse_rule('alert icmp any any -> any any (itype:11; icode:0; sid:12;)')
        assert rule.itype == 11 and rule.icode == 0

    def test_flow(self):
        rule = parse_rule(
            'alert tcp any any -> any any (flow:to_server,established; sid:13;)'
        )
        assert rule.flow == ["to_server", "established"]

    def test_threshold(self):
        rule = parse_rule(
            'alert tcp any any -> any any '
            "(threshold: type both, track by_src, count 30, seconds 10; sid:14;)"
        )
        assert rule.threshold.kind == "both"
        assert rule.threshold.track == "by_src"
        assert rule.threshold.count == 30
        assert rule.threshold.seconds == 10

    def test_classtype_and_priority(self):
        rule = parse_rule(
            'alert tcp any any -> any any (classtype:attempted-recon; priority:1; sid:15;)'
        )
        assert rule.classtype == "attempted-recon"
        assert rule.priority == 1

    def test_reference_collected(self):
        rule = parse_rule(
            'alert tcp any any -> any any (reference:url,example.com; sid:16;)'
        )
        assert rule.references == ["url,example.com"]

    def test_unsupported_option_raises(self):
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (frobnicate:yes; sid:17;)')

    def test_needs_payload(self):
        with_content = parse_rule('alert tcp any any -> any any (content:"x"; sid:18;)')
        without = parse_rule('alert tcp any any -> any any (flags:S; sid:19;)')
        assert with_content.needs_payload()
        assert not without.needs_payload()


class TestRulesetParsing:
    def test_comments_and_blanks_skipped(self):
        text = """
        # a comment

        alert tcp any any -> any any (msg:"one"; sid:1;)
        alert udp any any -> any 53 (msg:"two"; sid:2;)
        """
        rules = parse_ruleset(text)
        assert [r.sid for r in rules] == [1, 2]

    def test_duplicate_sid_raises(self):
        text = (
            'alert tcp any any -> any any (sid:1; msg:"a";)\n'
            'alert tcp any any -> any any (sid:1; msg:"b";)'
        )
        with pytest.raises(RuleParseError):
            parse_ruleset(text)

    def test_error_reports_line_number(self):
        text = 'alert tcp any any -> any any (sid:1;)\nbogus line here ()'
        with pytest.raises(RuleParseError, match="line 2"):
            parse_ruleset(text)


class TestThresholdSpec:
    def test_parse(self):
        spec = ThresholdSpec.parse("type limit, track by_dst, count 5, seconds 60")
        assert spec.kind == "limit"
        assert spec.track == "by_dst"

    def test_missing_field_raises(self):
        with pytest.raises(RuleParseError):
            ThresholdSpec.parse("type limit, count 5")

    def test_bad_chunk_raises(self):
        with pytest.raises(RuleParseError):
            ThresholdSpec.parse("nonsense")
