"""Unit tests for header/payload matchers."""

import pytest

from repro.rules import AddressSpec, ContentOption, DsizeOption, FlagsOption, PcreOption, PortSpec
from repro.rules.matcher import RuleParseError


class TestAddressSpec:
    def test_any(self):
        spec = AddressSpec.parse("any")
        assert spec.matches("1.2.3.4")

    def test_single_ip(self):
        spec = AddressSpec.parse("10.0.0.1")
        assert spec.matches("10.0.0.1")
        assert not spec.matches("10.0.0.2")

    def test_cidr(self):
        spec = AddressSpec.parse("10.1.0.0/16")
        assert spec.matches("10.1.200.3")
        assert not spec.matches("10.2.0.1")

    def test_negation(self):
        spec = AddressSpec.parse("!10.1.0.0/16")
        assert not spec.matches("10.1.0.5")
        assert spec.matches("192.0.2.1")

    def test_list(self):
        spec = AddressSpec.parse("[10.0.0.1,192.0.2.0/24]")
        assert spec.matches("10.0.0.1")
        assert spec.matches("192.0.2.77")
        assert not spec.matches("8.8.8.8")

    def test_variable_resolution(self):
        spec = AddressSpec.parse("$HOME_NET", {"HOME_NET": "10.1.0.0/16"})
        assert spec.matches("10.1.2.3")

    def test_negated_variable(self):
        spec = AddressSpec.parse("!$HOME_NET", {"HOME_NET": "10.1.0.0/16"})
        assert not spec.matches("10.1.2.3")
        assert spec.matches("8.8.8.8")

    def test_undefined_variable_raises(self):
        with pytest.raises(RuleParseError):
            AddressSpec.parse("$NOPE")

    def test_not_any_raises(self):
        with pytest.raises(RuleParseError):
            AddressSpec.parse("!any")

    def test_invalid_address_raises(self):
        with pytest.raises(RuleParseError):
            AddressSpec.parse("not-an-ip")


class TestPortSpec:
    def test_any(self):
        assert PortSpec.parse("any").matches(12345)

    def test_single(self):
        spec = PortSpec.parse("80")
        assert spec.matches(80)
        assert not spec.matches(81)

    def test_range(self):
        spec = PortSpec.parse("1000:2000")
        assert spec.matches(1000) and spec.matches(2000) and spec.matches(1500)
        assert not spec.matches(999)

    def test_open_ranges(self):
        assert PortSpec.parse(":1023").matches(80)
        assert not PortSpec.parse(":1023").matches(2000)
        assert PortSpec.parse("49152:").matches(60000)

    def test_list(self):
        spec = PortSpec.parse("[80,443,8080]")
        assert spec.matches(443)
        assert not spec.matches(22)

    def test_negated(self):
        spec = PortSpec.parse("!80")
        assert not spec.matches(80)
        assert spec.matches(81)

    def test_invalid_range_raises(self):
        with pytest.raises(RuleParseError):
            PortSpec.parse("70000")


class TestContentOption:
    def test_simple_match(self):
        opt = ContentOption(pattern=b"falun")
        assert opt.matches(b"GET /falun-gong HTTP/1.1")
        assert not opt.matches(b"GET / HTTP/1.1")

    def test_nocase(self):
        opt = ContentOption(pattern=b"FaLuN", nocase=True)
        assert opt.matches(b"...falun...")
        assert opt.matches(b"...FALUN...")

    def test_case_sensitive_by_default(self):
        assert not ContentOption(pattern=b"falun").matches(b"FALUN")

    def test_offset(self):
        opt = ContentOption(pattern=b"abc", offset=3)
        assert opt.matches(b"xyzabc")
        assert not opt.matches(b"abcxyz")

    def test_depth(self):
        opt = ContentOption(pattern=b"abc", depth=3)
        assert opt.matches(b"abczzz")
        assert not opt.matches(b"zabczz")

    def test_negated(self):
        opt = ContentOption(pattern=b"abc", negated=True)
        assert opt.matches(b"xyz")
        assert not opt.matches(b"abc")

    def test_hex_pattern_parsing(self):
        pattern = ContentOption.parse_pattern("|13|BitTorrent")
        assert pattern == b"\x13BitTorrent"

    def test_hex_with_spaces(self):
        assert ContentOption.parse_pattern("|0D 0A|end") == b"\r\nend"

    def test_mixed_text_hex_text(self):
        assert ContentOption.parse_pattern("a|00|b") == b"a\x00b"

    def test_unterminated_hex_raises(self):
        with pytest.raises(RuleParseError):
            ContentOption.parse_pattern("|0D end")


class TestPcreOption:
    def test_basic(self):
        opt = PcreOption.parse("/twi(tter|mlight)/")
        assert opt.matches(b"www.twitter.com")
        assert not opt.matches(b"example.org")

    def test_case_insensitive_flag(self):
        opt = PcreOption.parse("/falun/i")
        assert opt.matches(b"FALUN GONG")

    def test_negated(self):
        opt = PcreOption.parse("!/falun/")
        assert opt.matches(b"hello")
        assert not opt.matches(b"falun")

    def test_missing_slash_raises(self):
        with pytest.raises(RuleParseError):
            PcreOption.parse("falun")


class TestFlagsOption:
    def test_exact(self):
        opt = FlagsOption.parse("S")
        assert opt.matches(0x02)
        assert not opt.matches(0x12)  # SYN+ACK

    def test_plus(self):
        opt = FlagsOption.parse("SA+")
        assert opt.matches(0x12)
        assert opt.matches(0x1A)  # SYN+ACK+PSH
        assert not opt.matches(0x02)

    def test_any(self):
        opt = FlagsOption.parse("*SF")
        assert opt.matches(0x01)
        assert opt.matches(0x02)
        assert not opt.matches(0x10)

    def test_not(self):
        opt = FlagsOption.parse("!R")
        assert opt.matches(0x02)
        assert not opt.matches(0x04)

    def test_unknown_flag_raises(self):
        with pytest.raises(RuleParseError):
            FlagsOption.parse("Z")


class TestDsizeOption:
    def test_exact(self):
        opt = DsizeOption.parse("10")
        assert opt.matches(10)
        assert not opt.matches(9)

    def test_greater(self):
        opt = DsizeOption.parse(">100")
        assert opt.matches(101)
        assert not opt.matches(100)

    def test_less(self):
        opt = DsizeOption.parse("<100")
        assert opt.matches(99)
        assert not opt.matches(100)

    def test_between(self):
        opt = DsizeOption.parse("10<>20")
        assert opt.matches(15)
        assert not opt.matches(10)
        assert not opt.matches(20)
