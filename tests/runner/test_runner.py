"""Sweep runner: determinism across worker counts, merge, crash isolation.

The headline property: a sweep report is a pure function of its spec.
``--workers 1`` and ``--workers 4`` must produce byte-identical merged
reports and metrics snapshots, and a worker crash must fail only its own
points while the sweep completes.
"""

import json

import pytest

from repro.censor import censor_families
from repro.obs import MetricsRegistry
from repro.runner import (
    CampaignStore,
    QueuePlanner,
    SweepRunner,
    SweepSpec,
    estimate_cost,
    run_point,
    run_shard,
)


def small_spec(**overrides):
    params = dict(
        name="unit", base_seed=5, seeds=(0, 1), loss_rates=(0.0, 0.05),
        retry_policies=("single-shot", "retry-3"), port_count=40,
        duration=120.0,
    )
    params.update(overrides)
    return SweepSpec(**params)


def canonical(report):
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


class TestRunPoint:
    def test_ok_record_shape(self):
        point = small_spec().points()[0]
        record = run_point(point.as_dict())
        assert record["status"] == "ok"
        assert record["index"] == 0
        assert record["params"] == point.as_dict()
        assert record["results"][0]["verdict"] == "accessible"
        assert record["report"]["metrics"]["instruments"]
        json.dumps(record)  # JSON-ready end to end

    def test_point_runs_are_reproducible(self):
        point = small_spec(loss_rates=(0.05,)).points()[0]
        assert canonical(run_point(point.as_dict())) == \
            canonical(run_point(point.as_dict()))

    def test_censored_as_point_detects_blocking(self):
        spec = small_spec(
            topologies=("censored-as",), seeds=(0,), loss_rates=(0.0,),
            retry_policies=("single-shot",), duration=90.0,
        )
        record = run_point(spec.points()[0].as_dict())
        assert record["status"] == "ok"
        assert record["censor_events"] > 0
        verdicts = record["verdicts"]
        assert any(v != "accessible" for v in verdicts)

    def test_in_process_exit_injection_becomes_exception(self):
        point = small_spec(inject_failures={0: "exit"}).points()[0]
        with pytest.raises(RuntimeError, match="injected failure"):
            run_point(point.as_dict(), in_process=True)


class TestRunShard:
    def test_failed_point_does_not_kill_shard(self):
        spec = small_spec(seeds=(0,), loss_rates=(0.0,),
                          retry_policies=("single-shot", "retry-3"),
                          inject_failures={0: "exception"})
        records = run_shard([p.as_dict() for p in spec.points()],
                            max_point_retries=1, in_process=True)
        assert [r["status"] for r in records] == ["failed", "ok"]
        failed = records[0]
        assert "injected failure" in failed["error"]
        assert failed["attempts_used"] == 2  # initial try + 1 bounded retry


class TestDeterministicMerge:
    @pytest.fixture(scope="class")
    def reports(self):
        spec = small_spec()
        serial = SweepRunner(spec, serial=True).run()
        parallel = SweepRunner(spec, workers=4).run()
        return serial, parallel

    def test_serial_vs_four_workers_byte_identical(self, reports):
        serial, parallel = reports
        assert canonical(serial) == canonical(parallel)

    def test_merged_metrics_byte_identical(self, reports):
        serial, parallel = reports
        assert canonical(serial["merged"]["metrics"]) == \
            canonical(parallel["merged"]["metrics"])

    def test_merged_metrics_equal_sum_of_points(self, reports):
        serial, _ = reports
        rebuilt = MetricsRegistry()
        for record in serial["points"]:
            rebuilt.merge(record["report"]["metrics"])
        assert canonical(rebuilt.snapshot()) == \
            canonical(serial["merged"]["metrics"])

    def test_report_contains_no_execution_metadata(self, reports):
        serial, _ = reports
        text = canonical(serial)
        for leaky in ("workers", "wall", "shard"):
            assert f'"{leaky}"' not in text

    def test_points_listed_in_grid_order(self, reports):
        serial, _ = reports
        assert [r["index"] for r in serial["points"]] == list(range(8))


class TestCensorFamilySweeps:
    """Every registered censor family honours the determinism contract:
    a seeded two-vantage sweep is byte-identical serial vs two workers,
    and its record rows carry the family name on the censored vantage."""

    @pytest.mark.parametrize("family", censor_families())
    def test_family_sweep_deterministic_and_labelled(self, family):
        spec = small_spec(
            name=f"fam-{family}", seeds=(0,), loss_rates=(0.0,),
            retry_policies=("retry-3",), topologies=("censored-as",),
            techniques=("overt-http",), vantages=("censored", "clean"),
            censors=(family,), duration=90.0,
        )
        serial = SweepRunner(spec, serial=True).run()
        parallel = SweepRunner(spec, workers=2).run()
        assert canonical(serial) == canonical(parallel)

        censored_pt, clean_pt = serial["points"]
        assert {row["censor"] for row in censored_pt["records"]} == {family}
        assert {row["censor"] for row in clean_pt["records"]} == {"none"}


class TestQueuePlanner:
    def test_cost_estimate_tracks_the_known_drivers(self):
        cheap = small_spec(seeds=(0,), loss_rates=(0.0,),
                           retry_policies=("single-shot",)).points()[0]
        lossy = small_spec(seeds=(0,), loss_rates=(0.2,),
                           retry_policies=("single-shot",)).points()[0]
        retried = small_spec(seeds=(0,), loss_rates=(0.0,),
                             retry_policies=("retry-8",)).points()[0]
        censored = small_spec(
            seeds=(0,), loss_rates=(0.0,), retry_policies=("single-shot",),
            topologies=("censored-as",), techniques=("overt-http",),
        ).points()[0]
        assert estimate_cost(lossy) > estimate_cost(cheap)
        assert estimate_cost(retried) > estimate_cost(cheap)
        assert estimate_cost(censored) > estimate_cost(cheap)

    def test_injected_delay_dominates_every_grid_cost(self):
        points = small_spec(inject_delays={0: 0.5}).points()
        assert estimate_cost(points[0]) > max(
            estimate_cost(p) for p in points[1:]
        )

    def test_order_is_deterministic_most_expensive_first(self):
        points = small_spec().points()
        order = QueuePlanner().order(points)
        assert sorted(p.index for p in order) == [p.index for p in points]
        costs = [estimate_cost(p) for p in order]
        assert costs == sorted(costs, reverse=True)
        assert [p.index for p in QueuePlanner().order(points)] == \
            [p.index for p in order]

    def test_ties_break_by_grid_index(self):
        points = small_spec(loss_rates=(0.0,),
                            retry_policies=("single-shot",)).points()
        # equal-cost points: order must fall back to grid order
        assert [p.index for p in QueuePlanner().order(points)] == \
            [p.index for p in points]


class TestDispatchDeterminism:
    """Serial, round-robin shards, and work stealing — at any worker
    count — must all produce byte-identical reports, even on a grid with
    artificially skewed point costs."""

    @pytest.fixture(scope="class")
    def skewed_spec(self):
        return small_spec(
            name="skew", port_count=10, duration=30.0,
            inject_delays={0: 0.3},
        )

    @pytest.fixture(scope="class")
    def serial_reference(self, skewed_spec):
        return canonical(SweepRunner(skewed_spec, serial=True).run())

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("dispatch", ["round-robin", "stealing"])
    def test_all_modes_byte_identical(self, skewed_spec, serial_reference,
                                      workers, dispatch):
        report = SweepRunner(skewed_spec, workers=workers,
                             dispatch=dispatch).run()
        assert canonical(report) == serial_reference


class TestStarvation:
    def test_slow_point_does_not_starve_other_workers(self, tmp_path):
        """Regression: one pathologically slow point must not serialize
        the rest of the grid behind it.

        With work stealing, the whale (grid index 0, made 30-60x slower
        than its siblings via the cost-skew hook) is queued first and
        pins one worker; the other worker must drain every cheap point
        in the meantime.  The journal records completion order, so the
        whale finishing *last* — after all cheap points — is the
        observable proof the other worker kept working.  A dispatch
        regression that waits on futures in submission order (or shards
        cheap points behind the whale) journals the whale first instead.
        """
        spec = small_spec(name="whale", seeds=(0,), port_count=10,
                          duration=30.0, inject_delays={0: 0.6})
        store = CampaignStore(str(tmp_path / "whale.journal.jsonl"),
                              spec.content_hash())
        report = SweepRunner(spec, workers=2, dispatch="stealing",
                             store=store).run()
        store.close()

        with open(store.path, "r", encoding="utf-8") as fh:
            entries = [json.loads(line) for line in fh.read().splitlines()]
        completion_order = [e["index"] for e in entries
                            if e["kind"] == "point"]
        assert sorted(completion_order) == list(range(len(spec)))
        # every cheap point completed while the whale was still running
        assert completion_order[-1] == 0, (
            f"whale did not finish last: completion order "
            f"{completion_order} — cheap points starved behind it"
        )
        # and the skew changed scheduling only, never results
        clean = SweepRunner(spec, serial=True).run()
        assert canonical(report) == canonical(clean)


class TestUnpicklableResult:
    """Regression: a worker whose *result* fails to pickle used to
    surface as an anonymous pool exception naming no point at all."""

    @pytest.fixture(scope="class")
    def poisoned_spec(self):
        return small_spec(seeds=(0,), port_count=10, duration=30.0,
                          inject_failures={1: "unpicklable"})

    def test_failed_record_names_the_offending_point(self, poisoned_spec):
        report = SweepRunner(poisoned_spec, workers=2,
                             dispatch="stealing").run()
        assert report["summary"]["failed_points"] == [1]
        failed = report["points"][1]
        assert failed["status"] == "failed"
        assert "sweep point 1" in failed["error"]
        assert "could not be pickled" in failed["error"]
        # the poison is deterministic, so it is not retried
        assert failed["attempts_used"] == 1
        # siblings are untouched
        assert all(report["points"][i]["status"] == "ok" for i in (0, 2, 3))

    def test_error_record_identical_across_modes(self, poisoned_spec):
        serial = SweepRunner(poisoned_spec, serial=True).run()
        stealing = SweepRunner(poisoned_spec, workers=2,
                               dispatch="stealing").run()
        round_robin = SweepRunner(poisoned_spec, workers=2,
                                  dispatch="round-robin").run()
        assert canonical(serial) == canonical(stealing)
        assert canonical(serial) == canonical(round_robin)


class TestCrashIsolation:
    def test_exception_point_marked_failed_sweep_completes(self):
        spec = small_spec(seeds=(0,), inject_failures={1: "exception"})
        report = SweepRunner(spec, workers=2).run()
        assert report["summary"]["failed_points"] == [1]
        assert report["summary"]["ok"] == len(spec) - 1
        failed = report["points"][1]
        assert failed["status"] == "failed"
        assert "injected failure" in failed["error"]

    def test_worker_process_death_is_survived(self):
        spec = small_spec(seeds=(0,), inject_failures={2: "exit"})
        report = SweepRunner(spec, workers=2, max_point_retries=1).run()
        assert report["summary"]["failed_points"] == [2]
        assert report["summary"]["ok"] == len(spec) - 1
        assert "process died" in report["points"][2]["error"]
        # shard-mates of the dead worker were salvaged, not lost
        assert all(report["points"][i]["status"] == "ok"
                   for i in (0, 1, 3))

    def test_crash_free_points_identical_to_clean_run(self):
        clean = small_spec(seeds=(0,))
        crashed = small_spec(seeds=(0,), inject_failures={2: "exception"})
        clean_report = SweepRunner(clean, serial=True).run()
        crash_report = SweepRunner(crashed, workers=2).run()
        for index in (0, 1, 3):
            a = clean_report["points"][index]
            b = crash_report["points"][index]
            # identical apart from the injected-failure param bookkeeping
            assert a["results"] == b["results"]
            assert a["report"]["metrics"] == b["report"]["metrics"]
