"""Sweep runner: determinism across worker counts, merge, crash isolation.

The headline property: a sweep report is a pure function of its spec.
``--workers 1`` and ``--workers 4`` must produce byte-identical merged
reports and metrics snapshots, and a worker crash must fail only its own
points while the sweep completes.
"""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.runner import SweepRunner, SweepSpec, run_point, run_shard


def small_spec(**overrides):
    params = dict(
        name="unit", base_seed=5, seeds=(0, 1), loss_rates=(0.0, 0.05),
        retry_policies=("single-shot", "retry-3"), port_count=40,
        duration=120.0,
    )
    params.update(overrides)
    return SweepSpec(**params)


def canonical(report):
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


class TestRunPoint:
    def test_ok_record_shape(self):
        point = small_spec().points()[0]
        record = run_point(point.as_dict())
        assert record["status"] == "ok"
        assert record["index"] == 0
        assert record["params"] == point.as_dict()
        assert record["results"][0]["verdict"] == "accessible"
        assert record["report"]["metrics"]["instruments"]
        json.dumps(record)  # JSON-ready end to end

    def test_point_runs_are_reproducible(self):
        point = small_spec(loss_rates=(0.05,)).points()[0]
        assert canonical(run_point(point.as_dict())) == \
            canonical(run_point(point.as_dict()))

    def test_censored_as_point_detects_blocking(self):
        spec = small_spec(
            topologies=("censored-as",), seeds=(0,), loss_rates=(0.0,),
            retry_policies=("single-shot",), duration=90.0,
        )
        record = run_point(spec.points()[0].as_dict())
        assert record["status"] == "ok"
        assert record["censor_events"] > 0
        verdicts = record["verdicts"]
        assert any(v != "accessible" for v in verdicts)

    def test_in_process_exit_injection_becomes_exception(self):
        point = small_spec(inject_failures={0: "exit"}).points()[0]
        with pytest.raises(RuntimeError, match="injected failure"):
            run_point(point.as_dict(), in_process=True)


class TestRunShard:
    def test_failed_point_does_not_kill_shard(self):
        spec = small_spec(seeds=(0,), loss_rates=(0.0,),
                          retry_policies=("single-shot", "retry-3"),
                          inject_failures={0: "exception"})
        records = run_shard([p.as_dict() for p in spec.points()],
                            max_point_retries=1, in_process=True)
        assert [r["status"] for r in records] == ["failed", "ok"]
        failed = records[0]
        assert "injected failure" in failed["error"]
        assert failed["attempts_used"] == 2  # initial try + 1 bounded retry


class TestDeterministicMerge:
    @pytest.fixture(scope="class")
    def reports(self):
        spec = small_spec()
        serial = SweepRunner(spec, serial=True).run()
        parallel = SweepRunner(spec, workers=4).run()
        return serial, parallel

    def test_serial_vs_four_workers_byte_identical(self, reports):
        serial, parallel = reports
        assert canonical(serial) == canonical(parallel)

    def test_merged_metrics_byte_identical(self, reports):
        serial, parallel = reports
        assert canonical(serial["merged"]["metrics"]) == \
            canonical(parallel["merged"]["metrics"])

    def test_merged_metrics_equal_sum_of_points(self, reports):
        serial, _ = reports
        rebuilt = MetricsRegistry()
        for record in serial["points"]:
            rebuilt.merge(record["report"]["metrics"])
        assert canonical(rebuilt.snapshot()) == \
            canonical(serial["merged"]["metrics"])

    def test_report_contains_no_execution_metadata(self, reports):
        serial, _ = reports
        text = canonical(serial)
        for leaky in ("workers", "wall", "shard"):
            assert f'"{leaky}"' not in text

    def test_points_listed_in_grid_order(self, reports):
        serial, _ = reports
        assert [r["index"] for r in serial["points"]] == list(range(8))


class TestCrashIsolation:
    def test_exception_point_marked_failed_sweep_completes(self):
        spec = small_spec(seeds=(0,), inject_failures={1: "exception"})
        report = SweepRunner(spec, workers=2).run()
        assert report["summary"]["failed_points"] == [1]
        assert report["summary"]["ok"] == len(spec) - 1
        failed = report["points"][1]
        assert failed["status"] == "failed"
        assert "injected failure" in failed["error"]

    def test_worker_process_death_is_survived(self):
        spec = small_spec(seeds=(0,), inject_failures={2: "exit"})
        report = SweepRunner(spec, workers=2, max_point_retries=1).run()
        assert report["summary"]["failed_points"] == [2]
        assert report["summary"]["ok"] == len(spec) - 1
        assert "process died" in report["points"][2]["error"]
        # shard-mates of the dead worker were salvaged, not lost
        assert all(report["points"][i]["status"] == "ok"
                   for i in (0, 1, 3))

    def test_crash_free_points_identical_to_clean_run(self):
        clean = small_spec(seeds=(0,))
        crashed = small_spec(seeds=(0,), inject_failures={2: "exception"})
        clean_report = SweepRunner(clean, serial=True).run()
        crash_report = SweepRunner(crashed, workers=2).run()
        for index in (0, 1, 3):
            a = clean_report["points"][index]
            b = crash_report["points"][index]
            # identical apart from the injected-failure param bookkeeping
            assert a["results"] == b["results"]
            assert a["report"]["metrics"] == b["report"]["metrics"]
