"""CampaignStore: journal format, torn tails, spec-hash invalidation."""

import json

import pytest

from repro.runner import CampaignStore, SweepSpec


HASH = "0123456789abcdef"


def record(index, status="ok"):
    return {"index": index, "status": status, "params": {"index": index}}


def read_lines(path):
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read().splitlines()


class TestJournalFormat:
    def test_fresh_store_writes_header(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with CampaignStore(path, HASH):
            pass
        (header,) = [json.loads(line) for line in read_lines(path)]
        assert header["kind"] == "header"
        assert header["spec_hash"] == HASH
        assert header["schema"] == 2

    def test_append_writes_canonical_point_lines(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with CampaignStore(path, HASH) as store:
            store.append(record(3))
            store.append(record(1, status="failed"))
        lines = read_lines(path)
        assert len(lines) == 3
        first = json.loads(lines[1])
        assert first == {"kind": "point", "index": 3, "executions": 1,
                         "record": record(3)}
        # canonical JSON: sorted keys, compact separators
        assert lines[1] == json.dumps(first, sort_keys=True,
                                      separators=(",", ":"))

    def test_done_excludes_failed_points(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with CampaignStore(path, HASH) as store:
            store.append(record(0))
            store.append(record(1, status="failed"))
        reloaded = CampaignStore(path, HASH, resume=True)
        assert reloaded.done() == {0}
        assert set(reloaded.records) == {0, 1}
        reloaded.close()

    def test_reexecution_supersedes_and_counts(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with CampaignStore(path, HASH) as store:
            store.append(record(4, status="failed"))
            store.append(record(4))  # the resume pass re-ran it
        reloaded = CampaignStore(path, HASH, resume=True)
        assert reloaded.records[4]["status"] == "ok"
        assert reloaded.executions[4] == 2
        reloaded.close()


class TestResumeLoading:
    def test_resume_restores_records(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with CampaignStore(path, HASH) as store:
            store.append(record(0))
            store.append(record(2))
        reloaded = CampaignStore(path, HASH, resume=True)
        assert reloaded.resumed
        assert reloaded.done() == {0, 2}
        assert reloaded.records[2] == record(2)
        reloaded.close()

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "nope.journal.jsonl")
        store = CampaignStore(path, HASH, resume=True)
        assert not store.resumed
        assert store.records == {}
        store.close()
        assert read_lines(path)  # fresh header written

    def test_resume_false_truncates_existing_journal(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with CampaignStore(path, HASH) as store:
            store.append(record(0))
        with CampaignStore(path, HASH, resume=False) as store:
            assert store.records == {}
        assert len(read_lines(path)) == 1  # header only

    def test_appends_continue_after_resume(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with CampaignStore(path, HASH) as store:
            store.append(record(0))
        with CampaignStore(path, HASH, resume=True) as store:
            store.append(record(1))
        reloaded = CampaignStore(path, HASH, resume=True)
        assert reloaded.done() == {0, 1}
        reloaded.close()


class TestTornTail:
    def test_truncated_last_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with CampaignStore(path, HASH) as store:
            store.append(record(0))
            store.append(record(1))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind":"point","index":2,"executions":1,"rec')
        store = CampaignStore(path, HASH, resume=True)
        assert store.done() == {0, 1}
        # the torn bytes were truncated away, so appending keeps the
        # journal parseable end to end
        store.append(record(2))
        store.close()
        assert all(json.loads(line) for line in read_lines(path))

    def test_unparseable_middle_line_drops_the_rest(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with CampaignStore(path, HASH) as store:
            store.append(record(0))
            store.append(record(1))
        lines = read_lines(path)
        corrupted = [lines[0], lines[1], "!garbage!", lines[2]]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(corrupted) + "\n")
        store = CampaignStore(path, HASH, resume=True)
        # everything from the first bad byte on is untrusted
        assert store.done() == {0}
        store.close()


class TestSpecHashInvalidation:
    def test_mismatched_hash_discards_checkpoint(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with CampaignStore(path, HASH) as store:
            store.append(record(0))
        store = CampaignStore(path, "feedfacefeedface", resume=True)
        assert not store.resumed
        assert store.records == {}
        store.close()
        header = json.loads(read_lines(path)[0])
        assert header["spec_hash"] == "feedfacefeedface"

    def test_missing_header_discards_checkpoint(self, tmp_path):
        path = str(tmp_path / "c.journal.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "point", "index": 0,
                                 "record": record(0)}) + "\n")
        store = CampaignStore(path, HASH, resume=True)
        assert store.records == {}
        store.close()

    def test_spec_hash_tracks_grid_identity(self):
        base = dict(name="h", seeds=(0, 1), loss_rates=(0.0,),
                    retry_policies=("single-shot",))
        same = SweepSpec(**base).content_hash()
        assert SweepSpec(**base).content_hash() == same
        assert SweepSpec(**{**base, "seeds": (0, 2)}).content_hash() != same
        assert SweepSpec(**{**base, "port_count": 7}).content_hash() != same
