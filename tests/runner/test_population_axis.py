"""The populations sweep axis: grid expansion, cost model, determinism.

Mirrors the delay-skew starvation regression from the work-stealing PR,
but with a *real* whale: a point whose background population makes it
genuinely expensive.  Without the population term in ``estimate_cost``
the queue planner would schedule the whale last and serialize the sweep
behind it.
"""

import json

import pytest

from repro.runner import (
    CampaignStore,
    QueuePlanner,
    SweepRunner,
    SweepSpec,
    estimate_cost,
    run_point,
)


def population_spec(**overrides):
    params = dict(
        name="popaxis", base_seed=5, seeds=(0,),
        techniques=("overt-http",), topologies=("censored-as",),
        loss_rates=(0.0,), retry_policies=("single-shot",),
        populations=(120, 0), duration=20.0,
    )
    params.update(overrides)
    return SweepSpec(**params)


def canonical(report):
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


class TestGridExpansion:
    def test_populations_axis_multiplies_the_grid(self):
        spec = population_spec(loss_rates=(0.0, 0.02))
        assert len(spec) == 4
        points = spec.points()
        assert [p.population for p in points] == [120, 0, 120, 0]

    def test_populations_fastest_varying(self):
        spec = population_spec(retry_policies=("single-shot", "retry-3"))
        points = spec.points()
        # retry varies slower than population
        assert [(p.retry, p.population) for p in points] == [
            ("single-shot", 120), ("single-shot", 0),
            ("retry-3", 120), ("retry-3", 0),
        ]

    def test_empty_axis_keeps_legacy_grid(self):
        legacy = population_spec(populations=())
        assert len(legacy) == 1
        assert legacy.points()[0].population == 0

    def test_population_in_spec_dict_and_hash(self):
        spec = population_spec()
        assert spec.as_dict()["populations"] == [120, 0]
        assert spec.content_hash() != population_spec(populations=(60, 0)).content_hash()

    def test_three_node_topology_rejected(self):
        with pytest.raises(ValueError, match="populations axis"):
            SweepSpec(name="bad", topologies=("three-node",),
                      populations=(100,))

    def test_negative_population_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            population_spec(populations=(-1,))

    def test_zero_only_populations_allowed_on_three_node(self):
        """An all-zero axis attaches no gateways, so any topology works."""
        spec = SweepSpec(name="zeros", topologies=("three-node",),
                         populations=(0,))
        assert spec.points()[0].population == 0


class TestCostModel:
    def test_population_raises_point_cost(self):
        spec = population_spec()
        whale, cheap = spec.points()
        assert whale.population == 120
        assert estimate_cost(whale) > estimate_cost(cheap)

    def test_large_population_dominates_point_cost(self):
        spec = population_spec(populations=(1000, 0))
        whale, cheap = spec.points()
        assert estimate_cost(whale) > 2 * estimate_cost(cheap)

    def test_queue_orders_population_whale_first(self):
        spec = population_spec(loss_rates=(0.0, 0.02))
        ordered = QueuePlanner().order(spec.points())
        populations = [p.population for p in ordered]
        assert populations[:2] == [120, 120]


class TestPointExecution:
    @pytest.fixture(scope="class")
    def whale_record(self):
        spec = population_spec(populations=(60,), duration=6.0)
        return run_point(spec.points()[0].as_dict(), in_process=True)

    def test_rows_carry_population_and_background_bytes(self, whale_record):
        rows = whale_record["records"]
        assert rows
        for row in rows:
            assert row["population"] == 60
            assert row["background_bytes"] > 0

    def test_zero_population_point_keeps_zero_columns(self):
        spec = population_spec(populations=(0,), duration=6.0)
        record = run_point(spec.points()[0].as_dict(), in_process=True)
        for row in record["records"]:
            assert row["population"] == 0
            assert row["background_bytes"] == 0


class TestStarvationRegression:
    def test_population_whale_does_not_starve_other_workers(self, tmp_path):
        """With work stealing, the population whale (grid index 0) pins
        one worker while the other drains every cheap point; journal
        completion order is the observable proof.  A cost-model
        regression that prices population points like their empty
        siblings shards cheap points behind the whale instead."""
        spec = population_spec(populations=(900, 0, 0, 0), duration=20.0)
        store = CampaignStore(str(tmp_path / "pop.journal.jsonl"),
                              spec.content_hash())
        report = SweepRunner(spec, workers=2, dispatch="stealing",
                             store=store).run()
        store.close()

        with open(store.path, "r", encoding="utf-8") as fh:
            entries = [json.loads(line) for line in fh.read().splitlines()]
        completion_order = [e["index"] for e in entries if e["kind"] == "point"]
        assert sorted(completion_order) == list(range(len(spec)))
        assert completion_order[-1] == 0, (
            f"population whale did not finish last: completion order "
            f"{completion_order} — cheap points starved behind it"
        )
        # scheduling skew must never change results
        clean = SweepRunner(spec, serial=True).run()
        assert canonical(report) == canonical(clean)


class TestDispatchDeterminism:
    """Serial and pooled sweeps over a population axis must stay
    byte-identical — the tiered-fidelity generator preserves the runner's
    headline purity property."""

    @pytest.fixture(scope="class")
    def spec(self):
        return population_spec(populations=(80, 0), duration=8.0)

    @pytest.fixture(scope="class")
    def serial_reference(self, spec):
        return canonical(SweepRunner(spec, serial=True).run())

    @pytest.mark.parametrize("dispatch", ["round-robin", "stealing"])
    def test_workers2_byte_identical(self, spec, serial_reference, dispatch):
        report = SweepRunner(spec, workers=2, dispatch=dispatch).run()
        assert canonical(report) == serial_reference
