"""Unit tests for sweep specs and shard planning."""

import json

import pytest

from repro.censor import censor_families
from repro.core.measurement import RetryPolicy
from repro.netsim.impairment import mix_seed
from repro.runner import ShardPlanner, SweepPoint, SweepSpec, parse_retry_policy


class TestRetryPolicyParsing:
    def test_single_shot(self):
        policy = parse_retry_policy("single-shot")
        assert policy.max_attempts == 1

    def test_retry_n(self):
        policy = parse_retry_policy("retry-5")
        assert policy.max_attempts == 5
        assert policy.retries_enabled

    @pytest.mark.parametrize("bad", ["retry-x", "retry-1", "sometimes", "retry-"])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_retry_policy(bad)


class TestSweepSpecGrid:
    def _spec(self, **overrides):
        params = dict(
            name="t", base_seed=3, seeds=(0, 1), loss_rates=(0.0, 0.05),
            retry_policies=("single-shot", "retry-3"),
        )
        params.update(overrides)
        return SweepSpec(**params)

    def test_grid_size_is_axis_product(self):
        spec = self._spec()
        assert len(spec) == 8
        assert len(spec.points()) == 8

    def test_indices_are_contiguous_grid_order(self):
        points = self._spec().points()
        assert [p.index for p in points] == list(range(8))
        # seeds is the slowest axis, retry_policies the fastest
        assert points[0].seed == 0 and points[0].retry == "single-shot"
        assert points[1].retry == "retry-3"
        assert points[4].seed == 1

    def test_sim_seed_derived_via_mix_seed(self):
        spec = self._spec()
        for point in spec.points():
            assert point.sim_seed == mix_seed(3, point.seed, point.index)

    def test_points_are_pure_function_of_spec(self):
        assert self._spec().points() == self._spec().points()

    def test_point_dict_round_trip(self):
        point = self._spec().points()[5]
        assert SweepPoint.from_dict(point.as_dict()) == point
        json.dumps(point.as_dict())  # JSON-ready

    def test_retry_policy_materializes(self):
        point = self._spec().points()[1]
        assert isinstance(point.retry_policy(), RetryPolicy)
        assert point.retry_policy().max_attempts == 3

    def test_unknown_technique_rejected(self):
        with pytest.raises(ValueError, match="unknown technique"):
            self._spec(techniques=("warp",))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            self._spec(topologies=("star",))

    def test_three_node_rejects_non_scan_techniques(self):
        with pytest.raises(ValueError, match="three-node"):
            self._spec(techniques=("spam",), topologies=("three-node",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            self._spec(seeds=())

    def test_bad_loss_rate_rejected(self):
        with pytest.raises(ValueError, match="loss rate"):
            self._spec(loss_rates=(1.5,))

    def test_bad_fail_mode_rejected(self):
        with pytest.raises(ValueError, match="fail mode"):
            self._spec(inject_failures={0: "shrug"})

    def test_inject_failures_land_on_points(self):
        spec = self._spec(inject_failures={2: "exception"})
        points = spec.points()
        assert points[2].fail == "exception"
        assert all(p.fail == "" for p in points if p.index != 2)

    def test_unknown_mapping_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec keys"):
            SweepSpec.from_mapping({"name": "x", "warp_factor": 9})


class TestVantageAxis:
    def _spec(self, **overrides):
        params = dict(
            name="v", base_seed=3, seeds=(0, 1),
            topologies=("censored-as",),
            retry_policies=("single-shot",),
        )
        params.update(overrides)
        return SweepSpec(**params)

    def test_empty_vantages_keeps_legacy_grid(self):
        legacy = self._spec()
        assert len(legacy) == 2
        assert all(p.vantage == "" for p in legacy.points())

    def test_vantages_multiply_the_grid_as_fastest_axis(self):
        spec = self._spec(vantages=("censored", "clean"))
        points = spec.points()
        assert len(points) == 4
        assert [p.vantage for p in points] == [
            "censored", "clean", "censored", "clean",
        ]

    def test_unknown_vantage_rejected(self):
        with pytest.raises(ValueError, match="unknown vantage"):
            self._spec(vantages=("sideways",))

    def test_censored_vantage_needs_censored_as_topology(self):
        with pytest.raises(ValueError, match="censored-as"):
            SweepSpec(topologies=("three-node",),
                      vantages=("censored", "clean"))

    def test_vantage_name_prefers_the_axis_value(self):
        spec = self._spec(vantages=("clean",), censored=True)
        (p1, p2) = spec.points()
        assert p1.vantage_name() == "clean"
        assert not p1.effective_censored()
        assert not p2.effective_censored()

    def test_legacy_vantage_name_follows_censored_flag(self):
        censored_pt = self._spec(censored=True).points()[0]
        open_pt = self._spec(censored=False).points()[0]
        assert censored_pt.vantage_name() == "censored"
        assert censored_pt.effective_censored()
        assert open_pt.vantage_name() == "clean"
        assert not open_pt.effective_censored()

    def test_three_node_is_always_the_clean_vantage(self):
        point = SweepSpec(seeds=(0,)).points()[0]
        assert point.topology == "three-node"
        assert point.vantage_name() == "clean"
        assert not point.effective_censored()

    def test_vantages_change_the_content_hash(self):
        assert (self._spec().content_hash()
                != self._spec(vantages=("censored", "clean")).content_hash())

    def test_vantage_round_trips_through_dicts(self):
        spec = self._spec(vantages=("censored", "clean"))
        clone = SweepSpec.from_mapping(spec.as_dict())
        assert clone.points() == spec.points()
        point = spec.points()[1]
        assert SweepPoint.from_dict(point.as_dict()) == point


class TestCensorAxis:
    def _spec(self, **overrides):
        params = dict(
            name="c", base_seed=3, seeds=(0,),
            topologies=("censored-as",),
            retry_policies=("single-shot",),
            vantages=("censored", "clean"),
        )
        params.update(overrides)
        return SweepSpec(**params)

    def test_empty_censors_keeps_legacy_grid(self):
        legacy = self._spec()
        assert len(legacy) == 2
        assert all(p.censor == "" for p in legacy.points())
        assert all(p.censor_name() == "gfc" for p in legacy.points())

    def test_censors_multiply_the_grid_as_fastest_axis(self):
        spec = self._spec(censors=("gfc", "throttler"))
        points = spec.points()
        assert len(spec) == 4
        assert [(p.vantage, p.censor) for p in points] == [
            ("censored", "gfc"), ("censored", "throttler"),
            ("clean", "gfc"), ("clean", "throttler"),
        ]

    def test_unknown_censor_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown censor"):
            self._spec(censors=("firewall-9000",))

    def test_unknown_censor_rejected_at_spec_load(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "name": "bad", "topologies": ["censored-as"],
            "vantages": ["censored", "clean"],
            "censors": ["firewall-9000"],
        }))
        with pytest.raises(ValueError, match="unknown censor"):
            SweepSpec.load(str(path))

    def test_every_registered_family_is_a_valid_axis_value(self):
        spec = self._spec(censors=censor_families())
        assert len(spec) == 2 * len(censor_families())
        assert {p.censor for p in spec.points()} == set(censor_families())

    def test_censors_need_censored_as_topology(self):
        with pytest.raises(ValueError, match="censored-as"):
            SweepSpec(topologies=("three-node",), censors=("gfc",))

    def test_censors_change_the_content_hash(self):
        assert (self._spec().content_hash()
                != self._spec(censors=("gfc",)).content_hash())

    def test_censor_round_trips_through_dicts(self):
        spec = self._spec(censors=("gfc", "geoblocker"))
        clone = SweepSpec.from_mapping(spec.as_dict())
        assert clone.points() == spec.points()
        point = spec.points()[1]
        assert SweepPoint.from_dict(point.as_dict()) == point

    def test_sim_seed_ignores_the_censor_name_beyond_index(self):
        # Per-point seeds come from (base_seed, seed, index) alone, so a
        # point's simulation is a pure function of the spec.
        spec = self._spec(censors=("gfc", "throttler"))
        for point in spec.points():
            assert point.sim_seed == mix_seed(3, point.seed, point.index)


class TestSpecLoading:
    def test_load_json(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({
            "name": "fromjson", "seeds": [0, 1], "loss_rates": [0.0, 0.05],
        }))
        spec = SweepSpec.load(str(path))
        assert spec.name == "fromjson"
        assert len(spec) == 4

    def test_load_toml(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # noqa: F841 (py3.11+)
        path = tmp_path / "grid.toml"
        path.write_text(
            'name = "fromtoml"\nseeds = [0, 1, 2]\n'
            'retry_policies = ["single-shot", "retry-3"]\n'
        )
        spec = SweepSpec.load(str(path))
        assert spec.name == "fromtoml"
        assert len(spec) == 6

    def test_as_dict_round_trips_through_mapping(self):
        spec = SweepSpec(name="rt", seeds=(0, 2), inject_failures={1: "exit"})
        clone = SweepSpec.from_mapping(spec.as_dict())
        assert clone.points() == spec.points()


class TestShardPlanner:
    def _points(self, count):
        return SweepSpec(seeds=tuple(range(count))).points()

    def test_round_robin_assignment(self):
        shards = ShardPlanner(3).plan(self._points(8))
        assert [s.worker_id for s in shards] == [0, 1, 2]
        assert [[p.index for p in s.points] for s in shards] == [
            [0, 3, 6], [1, 4, 7], [2, 5],
        ]

    def test_every_point_assigned_exactly_once(self):
        points = self._points(11)
        shards = ShardPlanner(4).plan(points)
        seen = sorted(p.index for s in shards for p in s.points)
        assert seen == [p.index for p in points]

    def test_more_workers_than_points_drops_empty_shards(self):
        shards = ShardPlanner(8).plan(self._points(3))
        assert len(shards) == 3
        assert all(len(s) == 1 for s in shards)

    def test_single_worker_gets_everything(self):
        shards = ShardPlanner(1).plan(self._points(5))
        assert len(shards) == 1
        assert len(shards[0]) == 5

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)

    def test_plan_is_deterministic(self):
        points = self._points(9)
        assert ShardPlanner(4).plan(points) == ShardPlanner(4).plan(points)
