"""Crash-recovery harness: kill a campaign, resume it, compare bytes.

The campaign contract under test: a sweep that is hard-killed after N
journaled points (even mid-journal-line) and then resumed executes only
the missing points and produces a merged report byte-identical to an
uninterrupted run.  The kill is real — a child process running the CLI
dies via ``--kill-after``'s uncatchable ``os._exit``, the stand-in for
SIGKILL/OOM — and the resume goes through the same public entry points
an operator would use.

The Hypothesis property generalizes the same invariant over random
small grids and random kill points, asserting on top that no journaled
point is ever executed twice (via the journal's per-point execution
counter).
"""

import json
import os
import signal
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import CampaignStore, SweepRunner, SweepSpec

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def canonical(report):
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def small_spec(**overrides):
    params = dict(
        name="resume", base_seed=9, seeds=(0, 1), loss_rates=(0.0, 0.05),
        retry_policies=("single-shot", "retry-3"), port_count=10,
        duration=30.0,
    )
    params.update(overrides)
    return SweepSpec(**params)


def journal_lines(path):
    with open(path, "rb") as fh:
        return fh.read().split(b"\n")


def run_killed_campaign(tmp_path, spec, kill_after, extra_args=()):
    """Run ``repro sweep --kill-after N`` in its own session; reap strays.

    The child dies by ``os._exit`` with a pool possibly mid-flight, so
    any worker processes it forked are orphaned — exactly like a real
    SIGKILL.  Running the campaign in a fresh session lets the test
    killpg the whole group afterwards instead of leaking workers into
    the test host.
    """
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.as_dict()))
    prefix = str(tmp_path / "campaign")
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep", str(spec_path),
         "--out", prefix, "--kill-after", str(kill_after),
         "--partial-every", "1", *extra_args],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        returncode = proc.wait(timeout=120)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
    assert returncode == 137, f"kill injection did not fire ({returncode})"
    return prefix


def resume_campaign(spec, prefix, **runner_kwargs):
    store = CampaignStore(f"{prefix}.journal.jsonl", spec.content_hash(),
                          resume=True)
    runner = SweepRunner(spec, store=store, **runner_kwargs)
    try:
        report = runner.run()
    finally:
        store.close()
    return report, runner


@pytest.fixture(scope="module")
def uninterrupted():
    """The reference: one clean serial run of the standard small spec."""
    return SweepRunner(small_spec(), serial=True).run()


class TestKillThenResume:
    def test_serial_kill_resume_byte_identical(self, tmp_path, uninterrupted):
        spec = small_spec()
        prefix = run_killed_campaign(tmp_path, spec, kill_after=3,
                                     extra_args=("--serial",))
        # exactly N points were journaled before the kill
        store = CampaignStore(f"{prefix}.journal.jsonl", spec.content_hash(),
                              resume=True)
        assert len(store.records) == 3
        store.close()
        # the in-flight partial survived the crash and is valid JSON
        with open(f"{prefix}.partial.json", "r", encoding="utf-8") as fh:
            partial = json.load(fh)
        assert partial["spec_hash"] == spec.content_hash()
        # the kill fires inside the third journal append, before that
        # point's partial rewrite — the partial trails the journal by one
        assert partial["points_done"] == 2

        report, runner = resume_campaign(spec, prefix, serial=True)
        assert canonical(report) == canonical(uninterrupted)
        assert len(runner.resumed_indexes) == 3
        assert len(runner.executed_indexes) == len(spec) - 3
        assert set(runner.resumed_indexes).isdisjoint(runner.executed_indexes)

    def test_pool_kill_resume_byte_identical(self, tmp_path, uninterrupted):
        """Kill the whole pool (parent + workers) mid-campaign."""
        spec = small_spec()
        prefix = run_killed_campaign(tmp_path, spec, kill_after=2,
                                     extra_args=("--workers", "2"))
        report, runner = resume_campaign(spec, prefix, workers=2,
                                         dispatch="stealing")
        assert canonical(report) == canonical(uninterrupted)
        # the pool journals in completion order, so the surviving set is
        # arbitrary — but it plus the resumed set must tile the grid
        assert sorted(runner.resumed_indexes + runner.executed_indexes) == \
            list(range(len(spec)))

    def test_mid_line_kill_resume_byte_identical(self, tmp_path, uninterrupted):
        """The crash lands mid-journal-write: the torn tail must be
        dropped, its point re-executed, and the report unchanged."""
        spec = small_spec()
        prefix = run_killed_campaign(tmp_path, spec, kill_after=2,
                                     extra_args=("--serial",))
        path = f"{prefix}.journal.jsonl"
        # shear the last complete line in half (kill mid-write)
        with open(path, "rb") as fh:
            data = fh.read()
        torn = data[: len(data) - len(data.split(b"\n")[-2]) // 2 - 1]
        with open(path, "wb") as fh:
            fh.write(torn)

        report, runner = resume_campaign(spec, prefix, serial=True)
        assert canonical(report) == canonical(uninterrupted)
        # one journaled point was lost to the torn tail -> re-executed
        assert len(runner.resumed_indexes) == 1
        assert len(runner.executed_indexes) == len(spec) - 1

    def test_resume_of_complete_campaign_executes_nothing(self, tmp_path,
                                                          uninterrupted):
        spec = small_spec()
        prefix = str(tmp_path / "done")
        store = CampaignStore(f"{prefix}.journal.jsonl", spec.content_hash())
        report = SweepRunner(spec, serial=True, store=store).run()
        store.close()
        assert canonical(report) == canonical(uninterrupted)

        resumed, runner = resume_campaign(spec, prefix, serial=True)
        assert canonical(resumed) == canonical(uninterrupted)
        assert runner.executed_indexes == []
        assert len(runner.resumed_indexes) == len(spec)

    def test_resume_reruns_failed_points(self, tmp_path):
        spec = small_spec(seeds=(0,), inject_failures={1: "exception"})
        prefix = str(tmp_path / "fails")
        store = CampaignStore(f"{prefix}.journal.jsonl", spec.content_hash())
        first = SweepRunner(spec, serial=True, store=store).run()
        store.close()
        assert first["summary"]["failed_points"] == [1]

        resumed, runner = resume_campaign(spec, prefix, serial=True)
        # the failed point (and only it) was re-attempted
        assert runner.executed_indexes == [1]
        assert canonical(resumed) == canonical(first)
        store = CampaignStore(f"{prefix}.journal.jsonl", spec.content_hash(),
                              resume=True)
        assert store.executions[1] == 2
        assert all(store.executions[i] == 1 for i in (0, 2, 3))
        store.close()

    def test_changed_spec_invalidates_checkpoint(self, tmp_path):
        old = small_spec()
        prefix = str(tmp_path / "stale")
        store = CampaignStore(f"{prefix}.journal.jsonl", old.content_hash())
        SweepRunner(old, serial=True, store=store).run()
        store.close()

        changed = small_spec(port_count=11)
        report, runner = resume_campaign(changed, prefix, serial=True)
        # nothing from the old grid was trusted
        assert runner.resumed_indexes == []
        assert len(runner.executed_indexes) == len(changed)
        clean = SweepRunner(changed, serial=True).run()
        assert canonical(report) == canonical(clean)


class TestResumeProperty:
    """journaled ∪ resumed == full grid, and no point executes twice."""

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_random_grid_random_kill_point(self, data, tmp_path_factory):
        seeds = data.draw(
            st.lists(st.integers(0, 3), min_size=1, max_size=2, unique=True),
            label="seeds",
        )
        loss_rates = data.draw(
            st.lists(st.sampled_from([0.0, 0.03, 0.08]), min_size=1,
                     max_size=2, unique=True),
            label="loss_rates",
        )
        retries = data.draw(
            st.lists(st.sampled_from(["single-shot", "retry-2", "retry-3"]),
                     min_size=1, max_size=2, unique=True),
            label="retry_policies",
        )
        port_count = data.draw(st.integers(1, 4), label="port_count")
        spec = SweepSpec(
            name="prop", base_seed=data.draw(st.integers(0, 99), label="base"),
            seeds=tuple(seeds), loss_rates=tuple(loss_rates),
            retry_policies=tuple(retries), port_count=port_count,
            duration=10.0,
        )
        kill_at = data.draw(st.integers(0, len(spec)), label="kill_at")

        tmp = tmp_path_factory.mktemp("prop")
        path = str(tmp / "c.journal.jsonl")

        # the uninterrupted reference run, journaled
        store = CampaignStore(path, spec.content_hash())
        full = SweepRunner(spec, serial=True, store=store).run()
        store.close()

        # "kill after N points": keep the header plus the first N lines
        with open(path, "rb") as fh:
            lines = fh.read().split(b"\n")
        with open(path, "wb") as fh:
            fh.write(b"\n".join(lines[: 1 + kill_at]) + b"\n")

        store = CampaignStore(path, spec.content_hash(), resume=True)
        journaled = set(store.records)
        assert len(journaled) == kill_at
        runner = SweepRunner(spec, serial=True, store=store)
        resumed = runner.run()
        store.close()

        # journaled ∪ resumed tiles the grid exactly, with no overlap
        executed = set(runner.executed_indexes)
        assert journaled | executed == set(range(len(spec)))
        assert journaled & executed == set()
        # the per-point execution counter proves nothing ran twice
        reloaded = CampaignStore(path, spec.content_hash(), resume=True)
        assert set(reloaded.executions) == set(range(len(spec)))
        assert set(reloaded.executions.values()) == ({1} if len(spec) else set())
        reloaded.close()

        assert canonical(resumed) == canonical(full)
