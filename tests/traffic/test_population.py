"""Tap equivalence: the tiered-fidelity fast path changes nothing a tap sees.

The tentpole's safety argument, tested end to end: flows that cross a
tap are expanded to byte-accurate packets, so every tap observable —
captured bytes and timestamps, censor enforcement events, MVR retained
bytes, rule-engine hit counters — is *identical* between hybrid mode
(aggregate fast path + expansion at taps) and full fidelity (every flow
materialized).  The suite runs without impairment: loss draws RNG per
materialized packet, so lossy links make the two modes' random streams
diverge by construction — the documented limit of the equivalence.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import AggregateFlow, PacketCapture, build_censored_as
from repro.obs import MetricsRegistry, use_registry
from repro.traffic.population import (
    PopulationProfile,
    PopulationTraffic,
    _DNSTemplate,
    _SMTPTemplate,
    _VideoTemplate,
    _WebTemplate,
)

USERS = 300
WINDOW = 6.0


def run_population(fidelity, users=USERS, seed=7, tap=True):
    topo = build_censored_as(seed=seed)
    capture = PacketCapture()
    if tap:
        topo.border_router.add_tap(capture)
    population = PopulationTraffic(
        topo, users=users, fidelity=fidelity, log_schedule=True
    )
    population.start(WINDOW)
    topo.sim.run(until=topo.sim.now + WINDOW + 5.0)
    return topo, capture, population


def capture_trace(capture):
    """The byte-exact observable: (timestamp, wire bytes) per packet."""
    return [(round(entry.time, 9), entry.raw) for entry in capture.packets]


class TestTapEquivalence:
    @pytest.fixture(scope="class")
    def runs(self):
        return {mode: run_population(mode) for mode in ("hybrid", "full", "aggregate")}

    def test_schedule_identical_across_modes(self, runs):
        """The tier decision consumes no RNG, so the flow schedule is a
        pure function of (seed, users, profile) — fidelity-independent."""
        digests = {
            mode: population.schedule_digest()
            for mode, (_topo, _capture, population) in runs.items()
        }
        assert len(set(digests.values())) == 1, digests

    def test_tap_capture_byte_identical_hybrid_vs_full(self, runs):
        _t1, hybrid_capture, _p1 = runs["hybrid"]
        _t2, full_capture, _p2 = runs["full"]
        hybrid_trace = capture_trace(hybrid_capture)
        assert hybrid_trace, "no tap-crossing flows — equivalence is vacuous"
        assert hybrid_trace == capture_trace(full_capture)

    def test_aggregate_mode_reaches_no_tap(self, runs):
        _topo, capture, population = runs["aggregate"]
        assert capture_trace(capture) == []
        assert population.stats()["packets_materialized"] == 0

    def test_total_bytes_identical_across_modes(self, runs):
        """Conservation: both tiers account the same wire bytes, so the
        grand total is mode-independent."""
        totals = {
            mode: population.bytes_total()
            for mode, (_topo, _capture, population) in runs.items()
        }
        assert len(set(totals.values())) == 1, totals

    def test_hybrid_splits_tiers(self, runs):
        stats = runs["hybrid"][2].stats()
        assert stats["flows_aggregate"] > 0
        assert stats["flows_expanded"] > 0
        full = runs["full"][2].stats()
        assert full["flows_aggregate"] == 0
        assert full["flows_expanded"] == stats["flows_aggregate"] + stats["flows_expanded"]


def censored_observables(fidelity, users=150, seed=3, duration=6.0):
    """Run the full censored AS under background population; return every
    tap observable the paper's evaluation scores."""
    from repro.core.evaluation import build_environment

    registry = MetricsRegistry()
    with use_registry(registry):
        env = build_environment(
            censored=True, seed=seed, synthetic_users=users, fidelity=fidelity
        )
        env.population.start(duration)
        env.run(duration=duration + 5.0)
        snapshot = registry.snapshot()
    events = [
        (round(e.time, 9), e.mechanism, e.src, e.dst, e.detail)
        for e in env.censor.events
    ]
    rule_metrics = {
        name: instrument["values"]
        for name, instrument in snapshot["instruments"].items()
        if name.startswith("rules_") or name.startswith("mvr_")
    }
    return {
        "censor_events": events,
        "surveillance": env.surveillance.summary(),
        "rule_metrics": rule_metrics,
        "background_bytes": env.population.bytes_total(),
    }


class TestCensoredEnvironmentEquivalence:
    @pytest.fixture(scope="class")
    def observables(self):
        return {
            mode: censored_observables(mode) for mode in ("hybrid", "full")
        }

    def test_mvr_sees_identical_traffic(self, observables):
        hybrid = observables["hybrid"]["surveillance"]
        full = observables["full"]["surveillance"]
        assert hybrid["bytes_seen"] > 0, "population never reached the MVR"
        assert hybrid == full

    def test_censor_event_log_identical(self, observables):
        assert (
            observables["hybrid"]["censor_events"]
            == observables["full"]["censor_events"]
        )

    def test_rule_engine_counters_identical(self, observables):
        hybrid = observables["hybrid"]["rule_metrics"]
        assert hybrid, "no rule/MVR instruments registered — comparison is vacuous"
        assert hybrid == observables["full"]["rule_metrics"]

    def test_background_bytes_identical(self, observables):
        assert (
            observables["hybrid"]["background_bytes"]
            == observables["full"]["background_bytes"]
        )


def materialized_totals(template, flow_id, params):
    plan = template.plan(flow_id, params)
    packets_up, bytes_up, packets_down, bytes_down, duration = plan
    flow = AggregateFlow(
        flow_id=flow_id, kind=template.kind, src_ip="10.128.0.2",
        dst_ip="10.224.10.10", src_gateway="popgw-a", dst_gateway="popsvc",
        duration=duration, packets_up=packets_up, bytes_up=bytes_up,
        packets_down=packets_down, bytes_down=bytes_down,
        template=template, params=params,
    )
    total_bytes = 0
    total_packets = 0
    last_offset = 0.0
    for offset, _origin, packet in template.materialize(flow):
        total_bytes += packet.wire_length()
        total_packets += 1
        assert offset >= 0.0
        last_offset = max(last_offset, offset)
    return total_bytes, total_packets, last_offset, flow


class TestTemplateConservation:
    """The single-script invariant: plan totals equal materialized wire
    bytes for every parameter the generator can draw — the property
    ``FlowFidelityEngine._expand`` asserts at runtime."""

    @settings(max_examples=30, deadline=None)
    @given(flow_id=st.integers(0, 2**31), page=st.integers(1, 200_000))
    def test_web(self, flow_id, page):
        template = _WebTemplate()
        params = ("cdn-00.example.com", page)
        total_bytes, total_packets, last, flow = materialized_totals(
            template, flow_id, params
        )
        assert total_bytes == flow.bytes_total
        assert total_packets == flow.packets_total
        assert last < flow.duration

    @settings(max_examples=30, deadline=None)
    @given(flow_id=st.integers(0, 2**31),
           segment=st.integers(1, 100_000), count=st.integers(1, 5))
    def test_video(self, flow_id, segment, count):
        template = _VideoTemplate()
        params = ("video.example.com", segment, count)
        total_bytes, total_packets, _last, flow = materialized_totals(
            template, flow_id, params
        )
        assert total_bytes == flow.bytes_total
        assert total_packets == flow.packets_total

    @settings(max_examples=30, deadline=None)
    @given(flow_id=st.integers(0, 2**31), message=st.integers(1, 50_000))
    def test_smtp(self, flow_id, message):
        template = _SMTPTemplate()
        params = ("client.example.com", message)
        total_bytes, total_packets, _last, flow = materialized_totals(
            template, flow_id, params
        )
        assert total_bytes == flow.bytes_total
        assert total_packets == flow.packets_total

    @settings(max_examples=30, deadline=None)
    @given(flow_id=st.integers(0, 2**31),
           labels=st.lists(
               st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                       min_size=1, max_size=20),
               min_size=1, max_size=4))
    def test_dns(self, flow_id, labels):
        template = _DNSTemplate()
        params = (".".join(labels),)
        total_bytes, total_packets, _last, flow = materialized_totals(
            template, flow_id, params
        )
        assert total_bytes == flow.bytes_total
        assert total_packets == flow.packets_total


class TestPopulationSurface:
    def test_user_count_bounds_enforced(self):
        topo = build_censored_as(seed=1)
        with pytest.raises(ValueError, match="users"):
            PopulationTraffic(topo, users=0)

    def test_bad_fidelity_rejected(self):
        topo = build_censored_as(seed=1)
        with pytest.raises(ValueError, match="fidelity"):
            PopulationTraffic(topo, users=10, fidelity="imax")

    def test_user_ips_are_unique_and_prefix_routed(self):
        topo = build_censored_as(seed=1)
        population = PopulationTraffic(topo, users=100)
        ips = {population.user_ip(i) for i in range(100)}
        assert len(ips) == 100
        for i in (0, 1, 98, 99):
            owner = topo.network.owner_of(population.user_ip(i))
            assert owner is not None and owner.name.startswith("popgw-")

    def test_stop_halts_generation(self):
        topo = build_censored_as(seed=5)
        population = PopulationTraffic(topo, users=200, fidelity="aggregate")
        population.start(30.0)
        topo.sim.run(until=1.0)
        population.stop()
        created = population.flows_created
        assert created > 0
        topo.sim.run()
        assert population.flows_created == created

    def test_rate_scales_with_users_not_hosts(self):
        """Population-level Poisson arrivals: 4x the users, ~4x the flows,
        with zero additional Host objects."""
        topo_small = build_censored_as(seed=9)
        node_count = len(topo_small.network.nodes)
        small = PopulationTraffic(topo_small, users=100, fidelity="aggregate")
        small.start(WINDOW)
        topo_small.sim.run(until=topo_small.sim.now + WINDOW + 5.0)

        topo_large = build_censored_as(seed=9)
        large = PopulationTraffic(topo_large, users=400, fidelity="aggregate")
        large.start(WINDOW)
        topo_large.sim.run(until=topo_large.sim.now + WINDOW + 5.0)

        assert len(topo_large.network.nodes) == node_count + 4  # gateways only
        ratio = large.flows_created / max(1, small.flows_created)
        assert 2.0 < ratio < 8.0

    def test_custom_profile_rates_respected(self):
        topo = build_censored_as(seed=4)
        profile = PopulationProfile(
            web_rate=0.0, dns_rate=1.0, video_rate=0.0, smtp_rate=0.0
        )
        population = PopulationTraffic(
            topo, users=50, fidelity="aggregate", profile=profile,
            log_schedule=True,
        )
        population.start(3.0)
        topo.sim.run()
        kinds = {entry[2] for entry in population.schedule_log}
        assert kinds == {"dns"}
