"""Unit tests for the population-traffic generators."""

import random

import pytest

from repro.netsim import MailServer, WebServer, build_censored_as
from repro.traffic import (
    BackgroundScanners,
    DNSWorkload,
    DURUMERIC_2014,
    P2PWorkload,
    PopulationMix,
    SpamWorkload,
    WebWorkload,
    install_standard_servers,
)


@pytest.fixture
def topo():
    return build_censored_as(seed=6, population_size=6)


class TestWebWorkload:
    def test_issues_requests(self, topo):
        install_standard_servers(topo)
        workload = WebWorkload(
            clients=topo.population,
            sites=[(topo.control_web.ip, "example.org")],
            rng=topo.sim.rng,
            mean_interval=0.2,
        )
        workload.start(until=5.0)
        topo.run(duration=10.0)
        assert workload.requests_issued > 5
        assert any(result.ok for result in workload.results)

    def test_censored_fraction_hits_blocked_sites(self, topo):
        servers = install_standard_servers(topo)
        workload = WebWorkload(
            clients=topo.population,
            sites=[(topo.control_web.ip, "example.org")],
            censored_sites=[(topo.blocked_web.ip, "twitter.com")],
            censored_fraction=1.0,  # always censored, for the test
            rng=topo.sim.rng,
            mean_interval=0.2,
        )
        workload.start(until=3.0)
        topo.run(duration=6.0)
        blocked_server = servers["blocked_web"]
        assert blocked_server.requests_served > 0

    def test_stop(self, topo):
        install_standard_servers(topo)
        workload = WebWorkload(
            clients=topo.population,
            sites=[(topo.control_web.ip, "example.org")],
            rng=topo.sim.rng,
            mean_interval=0.1,
        )
        workload.start(until=100.0)
        topo.run(duration=1.0)
        workload.stop()
        count = workload.requests_issued
        topo.run(duration=5.0)
        assert workload.requests_issued <= count + 1

    def test_requires_clients_and_sites(self, topo):
        with pytest.raises(ValueError):
            WebWorkload(clients=[], sites=[("1.1.1.1", "x")], rng=topo.sim.rng)


class TestDNSWorkload:
    def test_queries_resolve(self, topo):
        install_standard_servers(topo)
        workload = DNSWorkload(
            clients=topo.population,
            resolver_ip=topo.dns_server.ip,
            names=["example.org"],
            rng=topo.sim.rng,
            mean_interval=0.1,
        )
        workload.start(until=2.0)
        topo.run(duration=5.0)
        assert workload.queries_issued > 5
        assert any(result.ok for result in workload.results)


class TestP2PWorkload:
    def test_transfers_complete(self, topo):
        mix = PopulationMix(topo, p2p_interval=0.2, web_interval=1e9,
                            dns_interval=1e9, spam_interval=1e9, scan_interval=1e9,
                            p2p_chunk=2048)
        install_standard_servers(topo)
        mix.p2p.start(until=3.0)
        topo.run(duration=10.0)
        assert mix.p2p.transfers_started > 0
        assert mix.p2p.transfers_completed > 0


class TestBackgroundScanners:
    def test_probes_sent(self, topo):
        mix = PopulationMix(topo)
        scanners = BackgroundScanners(
            scanners=mix.scanners,
            target_ips=[host.ip for host in topo.population],
            rng=topo.sim.rng,
            mean_interval=0.05,
        )
        scanners.start(until=1.0)
        topo.run(duration=3.0)
        assert scanners.probes_sent > 5

    def test_darknet_stats(self):
        assert DURUMERIC_2014.scans == 10_800_000
        per_ip_day = DURUMERIC_2014.scans_per_ip_per_day()
        assert 0.05 < per_ip_day < 0.07
        expected = DURUMERIC_2014.expected_background(65536, days=1.0)
        assert expected == pytest.approx(per_ip_day * 65536)


class TestSpamWorkload:
    def test_spam_delivered(self, topo):
        install_standard_servers(topo)
        workload = SpamWorkload(
            bots=topo.population[:2],
            mail_servers=[(topo.control_mail.ip, "example.org")],
            rng=topo.sim.rng,
            mean_interval=0.3,
        )
        workload.start(until=3.0)
        topo.run(duration=10.0)
        assert workload.messages_attempted > 2
        assert any(result.ok for result in workload.results)


class TestPopulationMix:
    def test_mix_runs_all_workloads(self, topo):
        install_standard_servers(topo)
        mix = PopulationMix(topo, web_interval=0.3, dns_interval=0.3,
                            p2p_interval=0.5, spam_interval=1.0, scan_interval=0.5)
        mix.start(until=5.0)
        topo.run(duration=15.0)
        stats = mix.stats()
        assert all(count > 0 for count in stats.values()), stats

    def test_outside_hosts_attached(self, topo):
        mix = PopulationMix(topo, outside_peer_count=2, scanner_count=4)
        assert len(mix.outside_peers) == 2
        assert len(mix.scanners) == 4
