"""Seed determinism of the population schedule, in and across processes.

The sweep's byte-identity guarantees extend to background traffic only
if the flow schedule is a pure function of ``(seed, users, profile)`` —
the same digest whether the population runs in the parent process
(serial mode) or inside pool workers, and regardless of fidelity mode.
These tests pin that contract, including the supporting invariant that
building a population never draws from ``sim.rng`` (which existing
workloads own).
"""

import os
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor

from hypothesis import given, settings, strategies as st

import repro
from repro.netsim import FIDELITY_MODES, build_censored_as
from repro.traffic import PopulationMix, PopulationTraffic

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def schedule_digest(seed=11, users=120, fidelity="aggregate", window=4.0):
    topo = build_censored_as(seed=seed)
    population = PopulationTraffic(
        topo, users=users, fidelity=fidelity, log_schedule=True
    )
    population.start(window)
    topo.sim.run(until=topo.sim.now + window + 5.0)
    return population.schedule_digest()


_SUBPROCESS_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from tests.traffic.test_mix_determinism import schedule_digest
print(schedule_digest(seed={seed}, users={users}))
"""


class TestSameSeedSameSchedule:
    def test_two_builds_byte_identical(self):
        assert schedule_digest(seed=11) == schedule_digest(seed=11)

    def test_different_seeds_differ(self):
        assert schedule_digest(seed=11) != schedule_digest(seed=12)

    def test_fidelity_mode_never_perturbs_the_schedule(self):
        digests = {schedule_digest(seed=11, fidelity=mode)
                   for mode in FIDELITY_MODES}
        assert len(digests) == 1

    def test_construction_does_not_draw_from_sim_rng(self):
        """The generator owns private ``mix_seed`` substreams; the shared
        simulator RNG must be exactly where existing workloads left it."""
        with_population = build_censored_as(seed=3)
        PopulationTraffic(with_population, users=100)
        without = build_censored_as(seed=3)
        assert (
            with_population.sim.rng.getstate() == without.sim.rng.getstate()
        )


class TestCrossProcessDeterminism:
    def test_digest_identical_in_fresh_interpreter(self):
        """Serial mode runs in the parent; pool workers are fresh
        processes.  The schedule must not depend on interpreter state
        (hash randomization, import order, interning history)."""
        local = schedule_digest(seed=23, users=80)
        script = _SUBPROCESS_SCRIPT.format(src=SRC_ROOT, seed=23, users=80)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(SRC_ROOT),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == local

    def test_digest_identical_across_pool_workers(self):
        """The exact execution shape of a ``--workers N`` sweep."""
        local = schedule_digest(seed=29, users=60)
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = list(pool.map(schedule_digest, [29, 29], [60, 60]))
        assert remote == [local, local]


class TestDeterminismProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31), users=st.integers(1, 60))
    def test_schedule_is_a_pure_function_of_seed_and_users(self, seed, users):
        first = schedule_digest(seed=seed, users=users, window=2.0)
        second = schedule_digest(seed=seed, users=users, window=2.0)
        assert first == second

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31),
           fidelity=st.sampled_from(FIDELITY_MODES))
    def test_mode_invariance_holds_for_any_seed(self, seed, fidelity):
        assert schedule_digest(seed=seed, users=40, window=2.0) == \
            schedule_digest(seed=seed, users=40, fidelity=fidelity, window=2.0)


class TestMixIntegration:
    def test_mix_population_reproducible(self):
        totals = []
        for _ in range(2):
            topo = build_censored_as(seed=17)
            mix = PopulationMix(topo, synthetic_users=80, fidelity="aggregate")
            mix.start(until=4.0)
            topo.sim.run()
            totals.append(mix.population.bytes_total())
        assert totals[0] > 0
        assert totals[0] == totals[1]

    def test_mix_stats_carry_population_tier(self):
        topo = build_censored_as(seed=17)
        mix = PopulationMix(topo, synthetic_users=80, fidelity="aggregate")
        mix.start(until=4.0)
        topo.sim.run()
        stats = mix.stats()
        assert stats["population_flows"] > 0
        assert stats["population_bytes"] == mix.population.bytes_total()

    def test_mix_without_synthetic_users_unchanged(self):
        topo = build_censored_as(seed=17)
        mix = PopulationMix(topo)
        assert mix.population is None
        assert "population_flows" not in mix.stats()
