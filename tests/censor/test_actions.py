"""Unit tests for censor packet-crafting actions."""

import pytest

from repro.censor import craft_block_page, craft_poisoned_response, craft_rst_pair
from repro.packets import (
    ACK,
    DNSMessage,
    HTTPResponse,
    IPPacket,
    PSH,
    QTYPE_MX,
    TCPSegment,
    UDPDatagram,
)


def http_request_packet(payload=b"GET / HTTP/1.1\r\nHost: x.com\r\n\r\n"):
    return IPPacket(
        src="10.1.0.5",
        dst="203.0.113.10",
        payload=TCPSegment(sport=40000, dport=80, seq=1000, ack=2000,
                           flags=PSH | ACK, payload=payload),
    )


class TestRstPair:
    def test_resets_target_both_endpoints(self):
        packet = http_request_packet()
        to_sender, to_receiver = craft_rst_pair(packet)
        assert to_sender.dst == "10.1.0.5"
        assert to_sender.src == "203.0.113.10"
        assert to_receiver.dst == "203.0.113.10"

    def test_sequence_numbers_in_window(self):
        packet = http_request_packet(payload=b"x" * 10)
        to_sender, to_receiver = craft_rst_pair(packet)
        # Toward the receiver: continues the sender's sequence space.
        assert to_receiver.tcp.seq == 1000 + 10
        # Toward the sender: uses the acknowledged sequence.
        assert to_sender.tcp.seq == 2000

    def test_ports_swapped_correctly(self):
        to_sender, to_receiver = craft_rst_pair(http_request_packet())
        assert (to_sender.tcp.sport, to_sender.tcp.dport) == (80, 40000)
        assert (to_receiver.tcp.sport, to_receiver.tcp.dport) == (40000, 80)

    def test_rst_flag_set(self):
        for rst in craft_rst_pair(http_request_packet()):
            assert rst.tcp.is_rst

    def test_non_tcp_raises(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=UDPDatagram(sport=1, dport=2))
        with pytest.raises(ValueError):
            craft_rst_pair(packet)


class TestPoisonedResponse:
    def _query_packet(self, qtype=1):
        query = DNSMessage.query("twitter.com", qtype=qtype, txid=0xBEEF)
        packet = IPPacket(
            src="10.1.0.5", dst="8.8.8.8",
            payload=UDPDatagram(sport=33000, dport=53, payload=query.to_bytes()),
        )
        return packet, query

    def test_forged_source_is_resolver(self):
        packet, query = self._query_packet()
        forged = craft_poisoned_response(packet, query, "8.7.198.45")
        assert forged.src == "8.8.8.8"
        assert forged.dst == "10.1.0.5"

    def test_txid_echoed(self):
        packet, query = self._query_packet()
        forged = craft_poisoned_response(packet, query, "8.7.198.45")
        message = DNSMessage.from_bytes(forged.udp.payload)
        assert message.txid == 0xBEEF

    def test_bogus_a_record_injected_even_for_mx(self):
        packet, query = self._query_packet(qtype=QTYPE_MX)
        forged = craft_poisoned_response(packet, query, "8.7.198.45")
        message = DNSMessage.from_bytes(forged.udp.payload)
        assert message.a_records() == ["8.7.198.45"]
        assert message.mx_records() == []

    def test_ports_swapped(self):
        packet, query = self._query_packet()
        forged = craft_poisoned_response(packet, query, "8.7.198.45")
        assert forged.udp.sport == 53
        assert forged.udp.dport == 33000


class TestBlockPage:
    def test_block_page_sequence(self):
        packet = http_request_packet(payload=b"GET /x HTTP/1.1\r\n\r\n")
        page, fin, to_server = craft_block_page(packet, "blocked!")
        response = HTTPResponse.from_bytes(page.tcp.payload)
        assert response.status == 403
        assert b"blocked!" in response.body
        assert page.tcp.seq == 2000  # takes over the server's sequence space
        assert fin.tcp.seq == 2000 + len(page.tcp.payload)
        assert to_server.tcp.is_rst

    def test_non_tcp_raises(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=UDPDatagram(sport=1, dport=2))
        with pytest.raises(ValueError):
            craft_block_page(packet)
