"""Tests for censorship regime presets and their observable signatures."""

import pytest

from repro.censor import CensorshipPolicy
from repro.core import DDoSMeasurement, OvertHTTPMeasurement, Verdict
from repro.core.evaluation import build_environment


class TestPresetShapes:
    def test_gfc_preset_is_default(self):
        preset = CensorshipPolicy.gfc_preset()
        assert preset.dns_poisoning
        assert preset.keyword_filtering
        assert preset.residual_block_seconds > 0

    def test_blockpage_preset(self):
        preset = CensorshipPolicy.blockpage_preset()
        assert preset.http_block_page
        assert not preset.keyword_filtering
        assert preset.residual_block_seconds == 0.0
        assert preset.enabled()

    def test_nullroute_preset(self):
        preset = CensorshipPolicy.nullroute_preset({"203.0.113.10"})
        assert preset.ip_blocking
        assert not preset.dns_poisoning
        assert not preset.http_host_filtering
        assert preset.endpoint_is_blocked("203.0.113.10", 80)


class TestRegimeSignatures:
    """Each regime has a distinct measurable signature — the paper's
    repeated-sampling argument (Method #3) is what surfaces it."""

    def _measure(self, policy_factory):
        env = build_environment(censored=True, seed=15, population_size=4)
        policy = policy_factory(env)
        policy.dns_poisoning = False  # isolate the HTTP-layer signature
        env.censor.set_policy(policy)
        technique = DDoSMeasurement(env.ctx, ["twitter.com"], requests_per_target=12)
        technique.start()
        env.run(duration=60.0)
        return technique.results[0].verdict

    def test_gfc_signature_is_reset(self):
        verdict = self._measure(lambda env: CensorshipPolicy.gfc_preset())
        assert verdict is Verdict.BLOCKED_RST

    def test_blockpage_signature(self):
        verdict = self._measure(lambda env: CensorshipPolicy.blockpage_preset())
        assert verdict is Verdict.HTTP_BLOCKPAGE

    def test_nullroute_signature_is_timeout(self):
        verdict = self._measure(
            lambda env: CensorshipPolicy.nullroute_preset({env.topo.blocked_web.ip})
        )
        assert verdict is Verdict.BLOCKED_TIMEOUT

    def test_nullroute_leaves_dns_clean(self):
        env = build_environment(censored=True, seed=15, population_size=4)
        env.censor.set_policy(
            CensorshipPolicy.nullroute_preset({env.topo.blocked_web.ip})
        )
        technique = OvertHTTPMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=60.0)
        # DNS resolves fine; the block manifests only at the HTTP stage.
        result = technique.results[0]
        assert result.verdict is Verdict.BLOCKED_TIMEOUT
        assert result.evidence["stage"] == "http"
