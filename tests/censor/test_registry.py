"""Censor-model registry: contract, construction, and family behaviour."""

import pytest

from repro.censor import (
    BidirectionalResidualCensor,
    CensorModel,
    CensorshipPolicy,
    GeoBlocker,
    GreatFirewall,
    ThrottlingCensor,
    build_censor,
    censor_families,
    register_censor,
)
from repro.censor.registry import CENSOR_FAMILIES
from repro.netsim import Simulator
from repro.netsim.middlebox import Action, TapContext
from repro.netsim.network import Network
from repro.netsim.node import Host, Router
from repro.packets import (
    DNSMessage,
    IPPacket,
    QTYPE_A,
    SYN,
    TCPSegment,
    UDPDatagram,
)


BUILTIN_FAMILIES = ("bidirectional-residual", "geoblocker", "gfc", "throttler")


class TestRegistryContract:
    def test_builtin_families_registered(self):
        assert censor_families() == BUILTIN_FAMILIES

    def test_build_censor_returns_the_registered_class(self):
        assert isinstance(build_censor("gfc"), GreatFirewall)
        assert isinstance(
            build_censor("bidirectional-residual"), BidirectionalResidualCensor
        )
        assert isinstance(build_censor("throttler"), ThrottlingCensor)
        assert isinstance(build_censor("geoblocker"), GeoBlocker)

    def test_every_family_is_a_censor_model(self):
        for name in censor_families():
            censor = build_censor(name)
            assert isinstance(censor, CensorModel)
            assert censor.family == name
            assert censor.events == []

    def test_unknown_name_raises_with_known_families(self):
        with pytest.raises(ValueError, match="unknown censor family 'nope'"):
            build_censor("nope")
        with pytest.raises(ValueError, match="gfc"):
            build_censor("nope")

    def test_family_attribute_stamped_by_decorator(self):
        assert GreatFirewall.family == "gfc"
        assert ThrottlingCensor.family == "throttler"

    def test_cited_families_carry_provenance(self):
        assert "2304.04835" in BidirectionalResidualCensor.provenance
        assert "2508.07194" in GeoBlocker.provenance

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_censor("gfc")
            class Impostor(CensorModel):
                pass

    def test_non_censor_class_rejected(self):
        with pytest.raises(TypeError):
            register_censor("stray")(object)
        assert "stray" not in CENSOR_FAMILIES

    def test_params_reach_the_family_constructor(self):
        censor = build_censor("throttler", bytes_per_sec=64.0)
        assert censor.bytes_per_sec == 64.0
        censor = build_censor("bidirectional-residual", residual_seconds=120.0)
        assert censor.residual_seconds == 120.0

    def test_set_policy_normalizes_entries(self):
        censor = build_censor("geoblocker")
        censor.set_policy(CensorshipPolicy(blocked_domains=["Example.COM."]))
        assert censor.policy.blocked_domains == ["example.com"]


def _tap_world(censor):
    """A minimal client -- router(tap) -- server world.

    Every host's ``deliver`` is shadowed with a recording hook (so no
    protocol stack replies), returned as ``rx[host_name]`` holding
    ``(packet, arrival_time)`` pairs.
    """
    sim = Simulator(seed=5)
    net = Network(sim)
    client = net.add(Host("client", "10.0.0.1"))
    router = net.add(Router("border"))
    server = net.add(Host("server", "203.0.113.10"))
    other = net.add(Host("other", "203.0.113.20"))
    net.connect(client, router)
    net.connect(router, server)
    net.connect(router, other)
    router.add_tap(censor)
    rx = {}
    for host in (client, server, other):
        bucket = rx.setdefault(host.name, [])
        host.deliver = (
            lambda packet, _b=bucket: _b.append((packet, sim.now))
        )
    return sim, net, client, server, other, rx


def _syn(src, dst, sport=4000, dport=80):
    return IPPacket(src=src, dst=dst,
                    payload=TCPSegment(sport=sport, dport=dport, seq=7, flags=SYN))


class TestBidirectionalResidual:
    def _censor(self):
        return build_censor(
            "bidirectional-residual",
            policy=CensorshipPolicy(blocked_ips={"203.0.113.10"}),
        )

    def test_syn_to_blocked_endpoint_draws_rsts_both_ways(self):
        censor = self._censor()
        sim, net, client, server, _, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)
        sim.run()
        # The SYN itself was dropped; both endpoints got forged RSTs.
        assert censor.ip_drops == 1
        assert censor.rst_injections == 2
        server_rx = [p for p, _ in rx["server"]]
        client_rx = [p for p, _ in rx["client"]]
        assert [p for p in server_rx if p.tcp is not None and p.tcp.is_syn] == []
        assert any(p.tcp is not None and p.tcp.is_rst for p in client_rx)
        assert any(p.tcp is not None and p.tcp.is_rst for p in server_rx)

    def test_enforces_on_the_reverse_direction_too(self):
        censor = self._censor()
        sim, net, client, server, _, rx = _tap_world(censor)
        # A packet *from* the blocked address is dropped at the border.
        net.originate(_syn(server.ip, client.ip), server)
        sim.run()
        assert rx["client"] == []
        assert censor.ip_drops == 1
        assert any("bidirectional" in e.detail for e in censor.events)

    def test_residual_penalty_is_minutes_long(self):
        censor = self._censor()
        assert censor.policy.residual_block_seconds == 600.0
        sim, net, client, server, _, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)
        sim.run()
        (expiry,) = censor._killed_flows.values()
        assert expiry >= 600.0  # minutes, not the GFC's ~90 s

    def test_gfc_residual_window_untouched_by_default(self):
        assert CensorshipPolicy().residual_block_seconds == 90.0

    def test_disabled_policy_is_inert(self):
        censor = build_censor(
            "bidirectional-residual", policy=CensorshipPolicy.disabled()
        )
        sim, net, client, server, _, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)
        sim.run()
        assert len(rx["server"]) == 1
        assert censor.events == []


class TestThrottler:
    def _policy(self):
        return CensorshipPolicy(blocked_ips={"203.0.113.10"})

    def test_classified_flow_is_delayed_not_blocked(self):
        censor = build_censor("throttler", policy=self._policy(),
                              bytes_per_sec=256.0)
        sim, net, client, server, other, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)
        net.originate(_syn(client.ip, other.ip, sport=4001), client)
        sim.run()
        # Both SYNs arrive -- no block signal -- but the classified one late.
        assert len(rx["server"]) == 1 and len(rx["other"]) == 1
        _, throttled_at = rx["server"][0]
        _, clean_at = rx["other"][0]
        assert throttled_at > clean_at
        assert censor.events_by_mechanism("throttle")
        assert censor.throttled_packets >= 1

    def test_never_injects_or_poisons(self):
        censor = build_censor("throttler", policy=self._policy())
        sim, net, client, server, _, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)
        query = DNSMessage.query("twitter.com", QTYPE_A, txid=9)
        net.originate(
            IPPacket(src=client.ip, dst="203.0.113.20",
                     payload=UDPDatagram(sport=5353, dport=53,
                                         payload=query.to_bytes())),
            client,
        )
        sim.run()
        # Nothing ever comes back toward the client from this censor.
        assert rx["client"] == []
        assert not any(e.mechanism in ("dns", "keyword") for e in censor.events)

    def test_sustained_flow_overflows_the_queue(self):
        censor = build_censor("throttler", policy=self._policy(),
                              bytes_per_sec=64.0, max_queue_bytes=128)
        sim, net, client, server, _, rx = _tap_world(censor)
        for i in range(8):
            net.originate(_syn(client.ip, server.ip), client, delay=i * 0.001)
        sim.run()
        assert censor.throttle_drops > 0

    def test_disabled_policy_is_inert(self):
        censor = build_censor("throttler", policy=CensorshipPolicy.disabled())
        sim, net, client, server, _, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)
        sim.run()
        assert len(rx["server"]) == 1
        assert censor.events == []


class TestGeoBlocker:
    def test_blocked_prefix_drops_silently_and_allows_control(self):
        censor = build_censor("geoblocker")  # default 203.0.113.0/28
        sim, net, client, server, other, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)             # .10: in /28
        net.originate(_syn(client.ip, other.ip, sport=4001), client)  # .20: out
        sim.run()
        assert rx["server"] == []      # silently dropped
        assert len(rx["other"]) == 1   # outside the blocked prefix
        assert rx["client"] == []      # no reset, no forged answer
        assert censor.geo_drops == 1
        assert censor.events_by_mechanism("geo")

    def test_allowlist_direction_passes_replies(self):
        # Outbound-only enforcement: traffic *from* the blocked prefix
        # (the allowlist direction) still crosses the border.
        censor = build_censor("geoblocker")
        sim, net, client, server, _, rx = _tap_world(censor)
        net.originate(_syn(server.ip, client.ip), server)
        sim.run()
        assert len(rx["client"]) == 1

    def test_inbound_direction_flips_the_scope(self):
        censor = build_censor("geoblocker", direction="inbound")
        sim, net, client, server, _, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)
        net.originate(_syn(server.ip, client.ip, sport=4002), server)
        sim.run()
        assert len(rx["server"]) == 1  # toward the prefix: allowed
        assert rx["client"] == []      # from the prefix: dropped

    def test_allow_prefix_exempts_a_client_range(self):
        censor = build_censor("geoblocker", allow_prefixes=("10.0.0.0/24",))
        sim, net, client, server, _, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)
        sim.run()
        assert len(rx["server"]) == 1
        assert censor.geo_drops == 0

    def test_policy_blocked_ips_enforced_as_host_prefixes(self):
        censor = build_censor(
            "geoblocker", blocked_prefixes=(),
            policy=CensorshipPolicy(blocked_ips={"203.0.113.20"}),
        )
        sim, net, client, server, other, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)
        net.originate(_syn(client.ip, other.ip, sport=4001), client)
        sim.run()
        assert len(rx["server"]) == 1
        assert rx["other"] == []

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="unknown direction"):
            build_censor("geoblocker", direction="sideways")

    def test_disabled_policy_is_inert(self):
        censor = build_censor("geoblocker", policy=CensorshipPolicy.disabled())
        sim, net, client, server, _, rx = _tap_world(censor)
        net.originate(_syn(client.ip, server.ip), client)
        sim.run()
        assert len(rx["server"]) == 1
        assert censor.events == []
