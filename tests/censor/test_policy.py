"""Unit tests for censorship policy."""

from repro.censor import CensorshipPolicy


class TestToggles:
    def test_default_enabled(self):
        assert CensorshipPolicy().enabled()

    def test_disabled_factory(self):
        policy = CensorshipPolicy.disabled()
        assert not policy.enabled()
        assert not policy.dns_poisoning
        assert not policy.keyword_filtering
        assert not policy.http_host_filtering
        assert not policy.ip_blocking

    def test_partial_enable(self):
        policy = CensorshipPolicy.disabled()
        policy.dns_poisoning = True
        assert policy.enabled()


class TestDomainMatching:
    def test_exact_domain(self):
        policy = CensorshipPolicy(blocked_domains=["twitter.com"])
        assert policy.domain_is_blocked("twitter.com")
        assert not policy.domain_is_blocked("example.org")

    def test_subdomain_blocked(self):
        policy = CensorshipPolicy(blocked_domains=["twitter.com"])
        assert policy.domain_is_blocked("www.twitter.com")
        assert policy.domain_is_blocked("api.mobile.twitter.com")

    def test_similar_domain_not_blocked(self):
        policy = CensorshipPolicy(blocked_domains=["twitter.com"])
        assert not policy.domain_is_blocked("nottwitter.com")

    def test_case_and_trailing_dot_insensitive(self):
        policy = CensorshipPolicy(blocked_domains=["twitter.com"])
        assert policy.domain_is_blocked("TWITTER.COM.")


class TestNormalization:
    """Entries are canonicalized on the way in, not at every lookup."""

    def test_mixed_case_entry_matches(self):
        policy = CensorshipPolicy(blocked_domains=["Facebook.COM."])
        assert policy.blocked_domains == ["facebook.com"]
        assert policy.domain_is_blocked("facebook.com")
        assert policy.domain_is_blocked("www.facebook.com")

    def test_trailing_dot_entry_matches(self):
        policy = CensorshipPolicy(blocked_domains=["example.com."])
        assert policy.domain_is_blocked("example.com")
        assert not policy.domain_is_blocked("notexample.com")

    def test_normalize_is_idempotent(self):
        policy = CensorshipPolicy(blocked_domains=["twitter.com"])
        policy.normalize()
        assert policy.blocked_domains == ["twitter.com"]


class TestEndpointMatching:
    def test_blocked_ip_any_port(self):
        policy = CensorshipPolicy(blocked_ips={"203.0.113.10"})
        assert policy.endpoint_is_blocked("203.0.113.10", 80)
        assert policy.endpoint_is_blocked("203.0.113.10", 443)

    def test_blocked_endpoint_specific_port(self):
        policy = CensorshipPolicy(blocked_endpoints={("203.0.113.10", 80)})
        assert policy.endpoint_is_blocked("203.0.113.10", 80)
        assert not policy.endpoint_is_blocked("203.0.113.10", 443)

    def test_unblocked(self):
        assert not CensorshipPolicy().endpoint_is_blocked("8.8.8.8", 53)
