"""Integration tests for the GreatFirewall middlebox over the simulator."""

import pytest

from repro.censor import CensorshipPolicy, GreatFirewall
from repro.netsim import (
    DNSServer,
    WebServer,
    Zone,
    build_censored_as,
    http_get,
    resolve,
)
from repro.packets import QTYPE_MX, QTYPE_TXT


@pytest.fixture
def world():
    topo = build_censored_as(seed=2, population_size=3)
    gfw = GreatFirewall()
    topo.border_router.add_tap(gfw)
    zone = Zone()
    for domain, ip in topo.domains.items():
        zone.add_a(domain, ip)
    zone.add_mx("twitter.com", "mail.twitter.com")
    zone.add_a("mail.twitter.com", topo.blocked_mail.ip)
    DNSServer(topo.dns_server, zone)
    WebServer(topo.blocked_web, default_body="<html>site</html>")
    WebServer(topo.control_web, default_body="<html>control</html>")
    return topo, gfw


class TestHTTPHostFiltering:
    def test_blocked_host_reset(self, world):
        topo, gfw = world
        results = []
        http_get(topo.measurement_client, topo.blocked_web.ip, "twitter.com",
                 callback=results.append)
        topo.run()
        assert results[0].status == "reset"
        assert gfw.rst_injections >= 1
        assert gfw.events_by_mechanism("http_host")

    def test_control_host_passes(self, world):
        topo, gfw = world
        results = []
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 callback=results.append)
        topo.run()
        assert results[0].ok
        assert gfw.events == []

    def test_block_page_mode(self, world):
        topo, gfw = world
        gfw.policy.http_block_page = True
        results = []
        http_get(topo.measurement_client, topo.blocked_web.ip, "twitter.com",
                 callback=results.append)
        topo.run()
        assert results[0].ok
        assert results[0].response.status == 403


class TestKeywordFiltering:
    def test_keyword_in_path_reset(self, world):
        topo, gfw = world
        results = []
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 "/falun", callback=results.append)
        topo.run()
        assert results[0].status == "reset"
        assert gfw.events_by_mechanism("keyword")

    def test_keyword_case_insensitive(self, world):
        topo, gfw = world
        results = []
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 "/FALUN-info", callback=results.append)
        topo.run()
        assert results[0].status == "reset"

    def test_residual_blocking_same_flow_pair(self, world):
        topo, gfw = world
        results = []
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 "/falun", callback=results.append)
        topo.run()
        assert gfw.residual_drops >= 1  # retransmissions/later packets punished

    def test_disabled_keyword_filtering(self, world):
        topo, gfw = world
        gfw.set_policy(CensorshipPolicy(keyword_filtering=False,
                                        http_host_filtering=False,
                                        dns_poisoning=False, ip_blocking=False))
        results = []
        http_get(topo.measurement_client, topo.control_web.ip, "example.org",
                 "/falun", callback=results.append)
        topo.run()
        assert results[0].ok


class TestDNSPoisoning:
    def test_a_query_poisoned(self, world):
        topo, gfw = world
        results = []
        resolve(topo.measurement_client, topo.dns_server.ip, "twitter.com",
                callback=results.append)
        topo.run()
        assert results[0].addresses == [gfw.policy.poison_ip]
        assert gfw.dns_injections == 1

    def test_mx_query_poisoned_with_a_record(self, world):
        topo, gfw = world
        results = []
        resolve(topo.measurement_client, topo.dns_server.ip, "twitter.com",
                qtype=QTYPE_MX, callback=results.append)
        topo.run()
        assert results[0].addresses == [gfw.policy.poison_ip]
        assert results[0].mx == []

    def test_subdomain_poisoned(self, world):
        topo, gfw = world
        results = []
        resolve(topo.measurement_client, topo.dns_server.ip, "mail.twitter.com",
                callback=results.append)
        topo.run()
        assert results[0].addresses == [gfw.policy.poison_ip]

    def test_control_domain_clean(self, world):
        topo, gfw = world
        results = []
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=results.append)
        topo.run()
        assert results[0].addresses == [topo.control_web.ip]
        assert gfw.dns_injections == 0

    def test_poisoning_can_be_disabled(self, world):
        topo, gfw = world
        gfw.policy.dns_poisoning = False
        results = []
        resolve(topo.measurement_client, topo.dns_server.ip, "twitter.com",
                callback=results.append)
        topo.run()
        assert results[0].addresses == [topo.blocked_web.ip]


class TestIPBlocking:
    def test_null_route_times_out(self, world):
        topo, gfw = world
        gfw.policy.blocked_ips.add(topo.control_web.ip)
        results = []
        http_get(topo.measurement_client, topo.control_web.ip, "anything.com",
                 callback=results.append, timeout=0.5)
        topo.run()
        assert results[0].status == "timeout"
        assert gfw.ip_drops >= 1

    def test_rst_endpoint_forges_refusal(self, world):
        topo, gfw = world
        gfw.policy.rst_endpoints.add((topo.control_web.ip, 80))
        results = []
        http_get(topo.measurement_client, topo.control_web.ip, "anything.com",
                 callback=results.append)
        topo.run()
        assert results[0].status == "reset"


class TestBlockedResolverEndpoint:
    def test_udp_to_blocked_endpoint_null_routed(self, world):
        # A resolver scan against a blocked (ip, port) endpoint: the UDP
        # query must be dropped via endpoint_is_blocked, not only when the
        # bare IP appears in blocked_ips.
        topo, gfw = world
        gfw.policy.blocked_endpoints.add((topo.dns_server.ip, 53))
        results = []
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=results.append, timeout=0.5)
        topo.run()
        assert results[0].status == "timeout"
        assert gfw.ip_drops >= 1
        assert gfw.events_by_mechanism("ip")

    def test_other_port_on_same_ip_unaffected(self, world):
        topo, gfw = world
        gfw.policy.blocked_endpoints.add((topo.dns_server.ip, 5353))
        results = []
        resolve(topo.measurement_client, topo.dns_server.ip, "example.org",
                callback=results.append)
        topo.run()
        assert results[0].ok
        assert gfw.ip_drops == 0


class TestPoisonQtypeScope:
    QTYPE_AAAA = 28

    def test_aaaa_query_not_poisoned(self, world):
        topo, gfw = world
        results = []
        resolve(topo.measurement_client, topo.dns_server.ip, "twitter.com",
                qtype=self.QTYPE_AAAA, callback=results.append)
        topo.run()
        # The zone has no AAAA record, so the honest answer is NODATA --
        # and crucially the injector stays silent.
        assert results[0].status == "nodata"
        assert results[0].addresses == []
        assert gfw.dns_injections == 0

    def test_txt_query_not_poisoned(self, world):
        topo, gfw = world
        results = []
        resolve(topo.measurement_client, topo.dns_server.ip, "twitter.com",
                qtype=QTYPE_TXT, callback=results.append)
        topo.run()
        assert results[0].status == "nodata"
        assert gfw.dns_injections == 0


class TestCounters:
    def test_reset_counters(self, world):
        topo, gfw = world
        results = []
        resolve(topo.measurement_client, topo.dns_server.ip, "twitter.com",
                callback=results.append)
        topo.run()
        assert gfw.dns_injections == 1
        gfw.reset_counters()
        assert gfw.dns_injections == 0
        assert gfw.events == []
