"""Unit tests for IPv4 addressing helpers."""

import pytest

from repro.packets import (
    hosts_of,
    in_network,
    int_to_ip,
    ip_to_int,
    is_valid_ip,
    network_of,
    parse_cidr,
    same_prefix,
)


class TestIpIntConversion:
    def test_round_trip(self):
        for addr in ("0.0.0.0", "255.255.255.255", "10.1.2.3", "192.0.2.1"):
            assert int_to_ip(ip_to_int(addr)) == addr

    def test_known_values(self):
        assert ip_to_int("1.0.0.0") == 1 << 24
        assert ip_to_int("0.0.0.1") == 1
        assert int_to_ip(0xC0A80101) == "192.168.1.1"

    def test_invalid_addresses_raise(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                ip_to_int(bad)

    def test_int_out_of_range_raises(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)

    def test_is_valid_ip(self):
        assert is_valid_ip("10.0.0.1")
        assert not is_valid_ip("10.0.0")
        assert not is_valid_ip("10.0.0.999")


class TestCidr:
    def test_parse_cidr(self):
        network, prefix = parse_cidr("10.1.0.0/16")
        assert network == ip_to_int("10.1.0.0")
        assert prefix == 16

    def test_parse_cidr_masks_host_bits(self):
        network, _ = parse_cidr("10.1.2.3/16")
        assert network == ip_to_int("10.1.0.0")

    def test_parse_cidr_rejects_bad_input(self):
        for bad in ("10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1"):
            with pytest.raises(ValueError):
                parse_cidr(bad)

    def test_in_network(self):
        assert in_network("10.1.5.9", "10.1.0.0/16")
        assert not in_network("10.2.5.9", "10.1.0.0/16")
        assert in_network("1.2.3.4", "0.0.0.0/0")

    def test_network_of(self):
        assert network_of("10.1.2.3", 24) == "10.1.2.0/24"
        assert network_of("10.1.2.3", 16) == "10.1.0.0/16"

    def test_same_prefix(self):
        assert same_prefix("10.1.2.3", "10.1.2.200", 24)
        assert not same_prefix("10.1.2.3", "10.1.3.3", 24)
        assert same_prefix("10.1.2.3", "10.1.3.3", 16)
        assert same_prefix("1.2.3.4", "9.9.9.9", 0)


class TestHostsOf:
    def test_yields_host_addresses(self):
        hosts = list(hosts_of("192.0.2.0/28", 3))
        assert hosts == ["192.0.2.1", "192.0.2.2", "192.0.2.3"]

    def test_custom_start(self):
        hosts = list(hosts_of("192.0.2.0/28", 2, start=5))
        assert hosts == ["192.0.2.5", "192.0.2.6"]

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            list(hosts_of("192.0.2.0/30", 10))
