"""Wire-cache equivalence suite.

The cache's governing invariant (docs/ARCHITECTURE.md, "Wire-cache
invariants"): a cached ``to_bytes()`` is byte-identical to what a fresh
serialization would produce.  These tests prove it per packet type, across
mutation and invalidation, through parse-seeded round trips, and on a full
Figure-1 capture.
"""

import pytest

from repro.packets import (
    ACK,
    ClientHello,
    DNSMessage,
    DNSRecord,
    EmailMessage,
    HTTPRequest,
    HTTPResponse,
    ICMPMessage,
    IPPacket,
    PSH,
    QTYPE_A,
    SMTPCommand,
    SMTPReply,
    ServerHello,
    SYN,
    TCPSegment,
    UDPDatagram,
    internet_checksum,
)

SRC, DST = "10.1.0.5", "203.0.113.10"


def tcp_packet(**overrides) -> IPPacket:
    fields = dict(
        sport=40000,
        dport=80,
        seq=100,
        ack=500,
        flags=PSH | ACK,
        payload=b"GET / HTTP/1.1\r\nHost: example.org\r\n\r\n",
    )
    fields.update(overrides)
    return IPPacket(src=SRC, dst=DST, payload=TCPSegment(**fields))


def udp_packet() -> IPPacket:
    return IPPacket(src=SRC, dst=DST, payload=UDPDatagram(sport=5353, dport=53, payload=b"q" * 31))


def icmp_packet() -> IPPacket:
    return IPPacket(src=SRC, dst=DST, payload=ICMPMessage.echo_request(ident=7, sequence=3, data=b"ping"))


def raw_packet() -> IPPacket:
    return IPPacket(src=SRC, dst=DST, payload=b"\x01\x02\x03\x04\x05", protocol=42)


PACKET_BUILDERS = [tcp_packet, udp_packet, icmp_packet, raw_packet]


class TestCachedEqualsFresh:
    @pytest.mark.parametrize("build", PACKET_BUILDERS)
    def test_repeat_serialization_is_identical_and_shared(self, build):
        packet = build()
        first = packet.to_bytes()
        second = packet.to_bytes()
        assert second == first
        assert second is first  # cache hit, not a rebuild

    @pytest.mark.parametrize("build", PACKET_BUILDERS)
    def test_cached_equals_independent_fresh_build(self, build):
        assert build().to_bytes() == build().to_bytes()

    @pytest.mark.parametrize(
        "build",
        [
            lambda: DNSMessage.query("example.org", txid=77),
            lambda: HTTPRequest(host="example.org", path="/x"),
            lambda: HTTPResponse.block_page(),
            lambda: ClientHello(server_name="blocked.example"),
            lambda: ServerHello(),
            lambda: SMTPCommand("MAIL", "FROM:<a@b.c>"),
            lambda: SMTPReply(250, "OK"),
            lambda: EmailMessage(sender="a@b.c", recipient="d@e.f", subject="hi", body="text"),
        ],
    )
    def test_application_messages_memoize(self, build):
        msg = build()
        first = msg.to_bytes()
        assert msg.to_bytes() is first
        assert build().to_bytes() == first

    @pytest.mark.parametrize("build", PACKET_BUILDERS)
    def test_wire_length_matches_cached_bytes(self, build):
        packet = build()
        assert packet.wire_length() == len(packet.to_bytes())
        assert packet.wire_length() == len(packet.to_bytes())


class TestMutationInvalidates:
    def test_ip_field_write_invalidates(self):
        packet = tcp_packet()
        before = packet.to_bytes()
        packet.ttl -= 1
        after = packet.to_bytes()
        assert after != before
        # the rebuilt image matches a fresh build of the mutated packet
        fresh = tcp_packet()
        fresh.ttl = packet.ttl
        assert after == fresh.to_bytes()

    def test_ttl_rewrite_keeps_transport_image(self):
        packet = tcp_packet()
        before = packet.to_bytes()
        transport_wire = packet.payload.to_bytes(SRC, DST)
        packet.ttl -= 1
        after = packet.to_bytes()
        # only the 20-byte header changed; the transport bytes are reused
        assert after[20:] == before[20:]
        assert packet.payload.to_bytes(SRC, DST) is transport_wire

    def test_nested_transport_mutation_invalidates_packet(self):
        packet = tcp_packet()
        before = packet.to_bytes()
        packet.payload.seq += 1
        after = packet.to_bytes()
        assert after != before
        fresh = tcp_packet(seq=101)
        assert after == fresh.to_bytes()

    def test_transport_cache_keyed_by_addresses(self):
        segment = TCPSegment(sport=1, dport=2, payload=b"x")
        a = segment.to_bytes(SRC, DST)
        b = segment.to_bytes(SRC, "203.0.113.77")
        assert a != b  # pseudo-header differs, so the checksum must differ
        assert segment.to_bytes(SRC, "203.0.113.77") is b

    @pytest.mark.parametrize(
        "build,mutate",
        [
            (lambda: DNSMessage.query("example.org"), lambda m: setattr(m, "txid", 9)),
            (lambda: HTTPRequest(host="h.example"), lambda m: setattr(m, "path", "/new")),
            (lambda: HTTPResponse(), lambda m: setattr(m, "status", 404)),
            (lambda: ClientHello(server_name="a.example"), lambda m: setattr(m, "server_name", "b.example")),
            (lambda: EmailMessage(sender="a@b.c", recipient="d@e.f"), lambda m: setattr(m, "subject", "s")),
        ],
    )
    def test_application_field_rebind_invalidates(self, build, mutate):
        msg = build()
        before = msg.to_bytes()
        mutate(msg)
        after = msg.to_bytes()
        assert after != before
        fresh = build()
        mutate(fresh)
        assert after == fresh.to_bytes()

    def test_in_place_container_mutation_needs_explicit_invalidate(self):
        msg = DNSMessage.query("example.org")
        reply = msg.reply(answers=[DNSRecord(name="example.org", rtype=QTYPE_A, data="192.0.2.1")])
        before = reply.to_bytes()
        reply.answers.append(DNSRecord(name="example.org", rtype=QTYPE_A, data="192.0.2.2"))
        assert reply.to_bytes() is before  # documented limitation: stale
        reply._invalidate_wire()
        after = reply.to_bytes()
        assert after != before
        # the rebuilt bytes reflect both answers
        assert len(DNSMessage.from_bytes(after).answers) == 2


class TestParseSeeding:
    @pytest.mark.parametrize("build", PACKET_BUILDERS)
    def test_parse_then_serialize_returns_source_object(self, build):
        wire = build().to_bytes()
        parsed = IPPacket.from_bytes(wire)
        assert parsed.to_bytes() is wire  # zero-recompute, zero-copy

    @pytest.mark.parametrize("build", PACKET_BUILDERS)
    def test_parse_mutate_serialize_rebuilds(self, build):
        wire = build().to_bytes()
        parsed = IPPacket.from_bytes(wire)
        parsed.ttl -= 1
        rebuilt = parsed.to_bytes()
        assert rebuilt != wire
        assert IPPacket.from_bytes(rebuilt).to_bytes() == rebuilt

    @pytest.mark.parametrize(
        "build,checksum_offset",
        [(tcp_packet, 20 + 16), (udp_packet, 20 + 6), (icmp_packet, 20 + 2)],
    )
    def test_corrupted_transport_checksum_is_corrected(self, build, checksum_offset):
        wire = build().to_bytes()
        corrupted = bytearray(wire)
        corrupted[checksum_offset] ^= 0xA5
        reserialized = IPPacket.from_bytes(bytes(corrupted)).to_bytes()
        # parsing accepts the damaged input, but serialization emits the
        # checksum we would compute — never the corrupted byte
        assert reserialized == wire

    def test_corrupted_ip_checksum_is_corrected(self):
        wire = tcp_packet().to_bytes()
        corrupted = bytearray(wire)
        corrupted[10] ^= 0x5A
        assert IPPacket.from_bytes(bytes(corrupted)).to_bytes() == wire

    def test_valid_header_checksums_on_fresh_build(self):
        wire = tcp_packet().to_bytes()
        assert internet_checksum(wire[:20]) == 0  # IP header sums to zero


class TestStructuralCopy:
    @pytest.mark.parametrize("build", PACKET_BUILDERS)
    def test_copy_shares_cached_wire(self, build):
        packet = build()
        wire = packet.to_bytes()
        clone = packet.copy()
        assert clone.to_bytes() is wire

    def test_copy_isolates_mutation(self):
        packet = tcp_packet()
        wire = packet.to_bytes()
        clone = packet.copy()
        clone.ttl -= 1
        clone.payload.seq += 7
        assert packet.to_bytes() is wire  # original untouched
        assert clone.to_bytes() != wire

    def test_copy_gets_fresh_metadata(self):
        packet = tcp_packet()
        packet.metadata["tag"] = "orig"
        packet.payload.metadata["tag"] = "orig"
        clone = packet.copy()
        assert clone.metadata == {}
        assert clone.payload.metadata == {}
        clone.metadata["tag"] = "clone"
        assert packet.metadata["tag"] == "orig"


class TestFigure1CaptureFidelity:
    def test_captured_bytes_match_pristine_serialization(self):
        """Every byte string a Figure-1 capture stores must equal what a
        from-scratch serialization of the same logical packet produces —
        the end-to-end form of the cache invariant, across routers that
        rewrite TTLs, injected censor traffic, and retries."""
        from tests.netsim.test_determinism import run_impaired_figure1

        trace, _verdicts, _lost = run_impaired_figure1(seed=13)
        assert trace  # the run produced traffic

        from repro.censor import CensorshipPolicy, GreatFirewall
        from repro.core import MeasurementContext, RetryPolicy, ScanMeasurement, ScanTarget
        from repro.netsim import PacketCapture, WebServer, build_three_node

        topo = build_three_node(seed=13)
        topo.client.user = "tester"
        censor = GreatFirewall(
            policy=CensorshipPolicy(),
            variables={"HOME_NET": "10.0.0.0/24", "EXTERNAL_NET": "any"},
        )
        capture = PacketCapture()
        topo.switch.add_tap(capture)
        topo.switch.add_tap(censor)
        WebServer(topo.server, default_body="<html>served content</html>")
        censor.policy.blocked_ips.add(topo.server.ip)
        ctx = MeasurementContext(
            client=topo.client, retry_policy=RetryPolicy(max_attempts=3, timeout=1.0)
        )
        technique = ScanMeasurement(
            ctx, [ScanTarget(topo.server.ip, [80], "server")], port_count=25, timeout=1.0
        )
        technique.start()
        topo.sim.run(until=topo.sim.now + 60.0)

        assert capture.packets
        for captured in capture.packets:
            reparsed = IPPacket.from_bytes(captured.raw)
            # bust every cache layer, then re-serialize from scratch
            reparsed.ttl = reparsed.ttl
            if not isinstance(reparsed.payload, (bytes, bytearray)):
                transport = reparsed.payload
                first_field = type(transport).__dataclass_fields__
                if "sport" in first_field:
                    transport.sport = transport.sport
                else:
                    transport.icmp_type = transport.icmp_type
            assert reparsed.to_bytes() == captured.raw
