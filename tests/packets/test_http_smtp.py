"""Unit tests for HTTP and SMTP message modelling."""

import pytest

from repro.packets import (
    EmailMessage,
    HTTPRequest,
    HTTPResponse,
    SMTPCommand,
    SMTPReply,
    parse_http_payload,
)


class TestHTTPRequest:
    def test_round_trip(self):
        request = HTTPRequest(method="GET", path="/index.html", host="example.com",
                              headers={"User-Agent": "test"})
        parsed = HTTPRequest.from_bytes(request.to_bytes())
        assert parsed.method == "GET"
        assert parsed.path == "/index.html"
        assert parsed.host == "example.com"
        assert parsed.headers["User-Agent"] == "test"

    def test_host_header_emitted_once(self):
        request = HTTPRequest(host="example.com", headers={"Host": "other.com"})
        wire = request.to_bytes()
        assert wire.count(b"Host:") == 1

    def test_body_and_content_length(self):
        request = HTTPRequest(method="POST", path="/submit", host="x.com", body=b"a=1")
        wire = request.to_bytes()
        assert b"Content-Length: 3" in wire
        assert HTTPRequest.from_bytes(wire).body == b"a=1"

    def test_url_property(self):
        request = HTTPRequest(path="/a", host="h.com")
        assert request.url == "http://h.com/a"

    def test_malformed_request_line_raises(self):
        with pytest.raises(ValueError):
            HTTPRequest.from_bytes(b"GARBAGE\r\n\r\n")


class TestHTTPResponse:
    def test_round_trip(self):
        response = HTTPResponse(status=200, reason="OK", body=b"<html></html>")
        parsed = HTTPResponse.from_bytes(response.to_bytes())
        assert parsed.status == 200
        assert parsed.reason == "OK"
        assert parsed.body == b"<html></html>"
        assert parsed.headers["Content-Length"] == "13"

    def test_block_page_is_403_html(self):
        page = HTTPResponse.block_page("nope")
        assert page.status == 403
        assert b"nope" in page.body
        assert page.headers["Content-Type"] == "text/html"

    def test_malformed_status_line_raises(self):
        with pytest.raises(ValueError):
            HTTPResponse.from_bytes(b"NOT-HTTP\r\n\r\n")


class TestParseHttpPayload:
    def test_detects_request(self):
        parsed = parse_http_payload(b"GET / HTTP/1.1\r\nHost: a.com\r\n\r\n")
        assert isinstance(parsed, HTTPRequest)

    def test_detects_response(self):
        parsed = parse_http_payload(b"HTTP/1.1 200 OK\r\n\r\nbody")
        assert isinstance(parsed, HTTPResponse)

    def test_non_http_returns_none(self):
        assert parse_http_payload(b"\x13BitTorrent protocol") is None
        assert parse_http_payload(b"EHLO example.com\r\n") is None


class TestSMTP:
    def test_command_round_trip(self):
        command = SMTPCommand("MAIL", "FROM:<a@b.com>")
        parsed = SMTPCommand.from_bytes(command.to_bytes())
        assert parsed.verb == "MAIL"
        assert parsed.argument == "FROM:<a@b.com>"

    def test_command_verb_uppercased(self):
        assert SMTPCommand.from_bytes(b"helo me\r\n").verb == "HELO"

    def test_bare_command(self):
        assert SMTPCommand("DATA").to_bytes() == b"DATA\r\n"

    def test_reply_round_trip(self):
        reply = SMTPReply(250, "ok")
        parsed = SMTPReply.from_bytes(reply.to_bytes())
        assert parsed.code == 250
        assert parsed.text == "ok"
        assert parsed.is_positive

    def test_negative_reply(self):
        assert not SMTPReply(554, "rejected").is_positive


class TestEmailMessage:
    def test_round_trip(self):
        message = EmailMessage(
            sender="a@b.com",
            recipient="c@d.com",
            subject="Hi",
            body="line one\r\nline two",
            extra_headers={"Reply-To": "z@y.com"},
        )
        parsed = EmailMessage.from_text(message.to_text())
        assert parsed.sender == "a@b.com"
        assert parsed.recipient == "c@d.com"
        assert parsed.subject == "Hi"
        assert parsed.body == "line one\r\nline two"
        assert parsed.extra_headers["Reply-To"] == "z@y.com"

    def test_words_tokenization(self):
        message = EmailMessage("a@b", "c@d", "WIN $100!", "Click here NOW")
        words = message.words()
        assert "win" in words
        assert "click" in words
        assert any(word.startswith("$100") for word in words)
