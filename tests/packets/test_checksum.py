"""Unit tests for the internet checksum."""

import struct

import pytest

from repro.packets import internet_checksum, pseudo_header, verify_checksum


def test_zero_data_checksum_is_all_ones():
    assert internet_checksum(b"\x00\x00") == 0xFFFF


def test_known_rfc1071_example():
    # The classic example from RFC 1071 section 3.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    total = internet_checksum(data)
    # Sum of words + checksum must be all-ones.
    words = [0x0001, 0xF203, 0xF4F5, 0xF6F7, total]
    acc = 0
    for word in words:
        acc += word
        acc = (acc & 0xFFFF) + (acc >> 16)
    assert acc == 0xFFFF


def test_odd_length_padded():
    even = internet_checksum(b"\xab\xcd\xef\x00")
    odd = internet_checksum(b"\xab\xcd\xef")
    assert even == odd


def test_verify_checksum_round_trip():
    data = b"hello world!"
    cksum = internet_checksum(data)
    # Append the checksum; the whole thing must verify.
    padded = data if len(data) % 2 == 0 else data + b"\x00"
    assert verify_checksum(padded + struct.pack("!H", cksum))


def test_checksum_is_16_bit():
    for blob in (b"", b"\xff" * 40, b"\x00" * 3, bytes(range(256))):
        assert 0 <= internet_checksum(blob) <= 0xFFFF


def test_pseudo_header_layout():
    header = pseudo_header(0x0A000001, 0x0A000002, 6, 20)
    assert len(header) == 12
    src, dst, zero, proto, length = struct.unpack("!IIBBH", header)
    assert (src, dst, zero, proto, length) == (0x0A000001, 0x0A000002, 0, 6, 20)
