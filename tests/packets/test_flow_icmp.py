"""Unit tests for flow keys and ICMP messages."""

import pytest

from repro.packets import (
    FiveTuple,
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
    ICMPMessage,
    IPPacket,
    PROTO_TCP,
    SYN,
    TCPSegment,
    UDPDatagram,
    canonical_flow,
    flow_of,
)


class TestFiveTuple:
    def test_reversed(self):
        tup = FiveTuple("1.1.1.1", 100, "2.2.2.2", 80, PROTO_TCP)
        rev = tup.reversed()
        assert rev.src == "2.2.2.2" and rev.dport == 100

    def test_canonical_is_direction_insensitive(self):
        a = FiveTuple("1.1.1.1", 100, "2.2.2.2", 80, PROTO_TCP)
        assert a.canonical() == a.reversed().canonical()

    def test_str_mentions_protocol(self):
        assert "tcp" in str(FiveTuple("1.1.1.1", 1, "2.2.2.2", 2, PROTO_TCP))


class TestFlowOf:
    def test_tcp_flow(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=TCPSegment(sport=5, dport=80, flags=SYN))
        flow = flow_of(packet)
        assert flow == FiveTuple("1.1.1.1", 5, "2.2.2.2", 80, PROTO_TCP)

    def test_udp_flow(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=UDPDatagram(sport=5, dport=53))
        assert flow_of(packet).dport == 53

    def test_canonical_flow_matches_both_directions(self):
        fwd = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                       payload=TCPSegment(sport=5, dport=80, flags=SYN))
        rev = IPPacket(src="2.2.2.2", dst="1.1.1.1",
                       payload=TCPSegment(sport=80, dport=5))
        assert canonical_flow(fwd) == canonical_flow(rev)


class TestICMP:
    def test_echo_round_trip(self):
        echo = ICMPMessage.echo_request(ident=7, sequence=3, data=b"ping")
        parsed = ICMPMessage.from_bytes(echo.to_bytes())
        assert parsed.icmp_type == ICMP_ECHO_REQUEST
        assert parsed.ident == 7
        assert parsed.sequence == 3
        assert parsed.payload == b"ping"

    def test_echo_reply_copies_ident(self):
        request = ICMPMessage.echo_request(ident=9, sequence=1, data=b"x")
        reply = ICMPMessage.echo_reply(request)
        assert reply.icmp_type == ICMP_ECHO_REPLY
        assert reply.ident == 9
        assert reply.payload == b"x"

    def test_time_exceeded_quotes_original(self):
        original = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                            payload=TCPSegment(sport=1, dport=2, flags=SYN)).to_bytes()
        error = ICMPMessage.time_exceeded(original)
        assert error.icmp_type == ICMP_TIME_EXCEEDED
        assert error.payload == original[:28]

    def test_dest_unreachable_default_code(self):
        error = ICMPMessage.dest_unreachable(b"\x00" * 28)
        assert error.icmp_type == ICMP_DEST_UNREACH
        assert error.code == 1

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            ICMPMessage.from_bytes(b"\x08\x00")
