"""Unit tests for IP/TCP/UDP wire formats."""

import pytest

from repro.packets import (
    ACK,
    IPPacket,
    PROTO_TCP,
    PROTO_UDP,
    PSH,
    RST,
    SYN,
    TCPSegment,
    UDPDatagram,
    internet_checksum,
    pseudo_header,
    ip_to_int,
)


class TestIPPacket:
    def test_round_trip_tcp(self):
        packet = IPPacket(
            src="10.0.0.1",
            dst="192.0.2.9",
            payload=TCPSegment(sport=1234, dport=80, seq=42, ack=7, flags=SYN | ACK,
                               payload=b"hello"),
            ttl=17,
        )
        parsed = IPPacket.from_bytes(packet.to_bytes())
        assert parsed.src == "10.0.0.1"
        assert parsed.dst == "192.0.2.9"
        assert parsed.ttl == 17
        assert parsed.protocol == PROTO_TCP
        assert parsed.tcp.sport == 1234
        assert parsed.tcp.dport == 80
        assert parsed.tcp.seq == 42
        assert parsed.tcp.ack == 7
        assert parsed.tcp.flags == SYN | ACK
        assert parsed.tcp.payload == b"hello"

    def test_round_trip_udp(self):
        packet = IPPacket(
            src="10.0.0.1", dst="8.8.8.8",
            payload=UDPDatagram(sport=5353, dport=53, payload=b"\x01\x02\x03"),
        )
        parsed = IPPacket.from_bytes(packet.to_bytes())
        assert parsed.protocol == PROTO_UDP
        assert parsed.udp.sport == 5353
        assert parsed.udp.payload == b"\x01\x02\x03"

    def test_header_checksum_valid(self):
        packet = IPPacket(src="1.2.3.4", dst="5.6.7.8",
                          payload=UDPDatagram(sport=1, dport=2))
        raw = packet.to_bytes()
        assert internet_checksum(raw[:20]) == 0

    def test_raw_payload_requires_protocol(self):
        with pytest.raises(ValueError):
            IPPacket(src="1.2.3.4", dst="5.6.7.8", payload=b"raw")
        packet = IPPacket(src="1.2.3.4", dst="5.6.7.8", payload=b"raw", protocol=99)
        parsed = IPPacket.from_bytes(packet.to_bytes())
        assert parsed.payload == b"raw"

    def test_unsupported_payload_type_raises(self):
        with pytest.raises(TypeError):
            IPPacket(src="1.2.3.4", dst="5.6.7.8", payload=object())

    def test_truncated_header_raises(self):
        with pytest.raises(ValueError):
            IPPacket.from_bytes(b"\x45\x00\x00")

    def test_copy_is_independent(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=TCPSegment(sport=1, dport=2, flags=SYN))
        clone = packet.copy()
        clone.ttl = 1
        assert packet.ttl != 1

    def test_summary_mentions_endpoints(self):
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=TCPSegment(sport=1000, dport=80, flags=SYN))
        text = packet.summary()
        assert "1.1.1.1" in text and "2.2.2.2" in text and "S" in text


class TestTCPSegment:
    def test_checksum_includes_pseudo_header(self):
        segment = TCPSegment(sport=1, dport=2, seq=3, ack=4, flags=ACK, payload=b"x")
        wire = segment.to_bytes("10.0.0.1", "10.0.0.2")
        pseudo = pseudo_header(ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), 6, len(wire))
        assert internet_checksum(pseudo + wire) == 0

    def test_flag_helpers(self):
        assert TCPSegment(sport=1, dport=2, flags=SYN).is_syn
        assert not TCPSegment(sport=1, dport=2, flags=SYN | ACK).is_syn
        assert TCPSegment(sport=1, dport=2, flags=SYN | ACK).is_synack
        assert TCPSegment(sport=1, dport=2, flags=RST).is_rst
        assert TCPSegment(sport=1, dport=2, flags=ACK).is_ack_only
        assert not TCPSegment(sport=1, dport=2, flags=ACK, payload=b"d").is_ack_only

    def test_flag_names(self):
        assert TCPSegment(sport=1, dport=2, flags=SYN | ACK).flag_names() == "SA"
        assert TCPSegment(sport=1, dport=2, flags=PSH | ACK).flag_names() == "PA"

    def test_options_padded_to_word(self):
        segment = TCPSegment(sport=1, dport=2, options=b"\x02\x04\x05")
        wire = segment.to_bytes("1.1.1.1", "2.2.2.2")
        parsed = TCPSegment.from_bytes(wire)
        assert parsed.options == b"\x02\x04\x05\x00"

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            TCPSegment.from_bytes(b"\x00" * 10)

    def test_sequence_numbers_wrap(self):
        segment = TCPSegment(sport=1, dport=2, seq=2**32 + 5)
        parsed = TCPSegment.from_bytes(segment.to_bytes("1.1.1.1", "2.2.2.2"))
        assert parsed.seq == 5


class TestUDPDatagram:
    def test_round_trip(self):
        datagram = UDPDatagram(sport=1000, dport=53, payload=b"query")
        parsed = UDPDatagram.from_bytes(datagram.to_bytes("1.1.1.1", "2.2.2.2"))
        assert parsed == UDPDatagram(sport=1000, dport=53, payload=b"query")

    def test_checksum_valid(self):
        datagram = UDPDatagram(sport=1, dport=2, payload=b"abc")
        wire = datagram.to_bytes("10.0.0.1", "10.0.0.2")
        pseudo = pseudo_header(ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2"), 17, len(wire))
        assert internet_checksum(pseudo + wire) == 0

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            UDPDatagram.from_bytes(b"\x00" * 4)

    def test_length_field_honoured_on_parse(self):
        datagram = UDPDatagram(sport=1, dport=2, payload=b"abcd")
        wire = datagram.to_bytes("1.1.1.1", "2.2.2.2") + b"trailing-garbage"
        parsed = UDPDatagram.from_bytes(wire)
        assert parsed.payload == b"abcd"


class TestWireLength:
    """wire_length() must equal len(to_bytes()) without serializing."""

    def test_tcp(self):
        packet = IPPacket(src="10.0.0.1", dst="10.0.0.2",
                          payload=TCPSegment(sport=1, dport=2, flags=PSH | ACK,
                                             payload=b"hello world"))
        assert packet.wire_length() == len(packet.to_bytes())

    def test_udp(self):
        packet = IPPacket(src="10.0.0.1", dst="10.0.0.2",
                          payload=UDPDatagram(sport=1, dport=2, payload=b"abc"))
        assert packet.wire_length() == len(packet.to_bytes())

    def test_icmp(self):
        from repro.packets import ICMPMessage

        packet = IPPacket(src="10.0.0.1", dst="10.0.0.2",
                          payload=ICMPMessage.echo_request(data=b"ping-data"))
        assert packet.wire_length() == len(packet.to_bytes())

    def test_raw_bytes_payload(self):
        packet = IPPacket(src="10.0.0.1", dst="10.0.0.2",
                          payload=b"\x00" * 37, protocol=47)
        assert packet.wire_length() == len(packet.to_bytes())

    def test_tracks_payload_growth(self):
        segment = TCPSegment(sport=1, dport=2, payload=b"")
        packet = IPPacket(src="10.0.0.1", dst="10.0.0.2", payload=segment)
        before = packet.wire_length()
        segment.payload = b"x" * 100
        assert packet.wire_length() == before + 100
        assert packet.wire_length() == len(packet.to_bytes())
