"""Unit tests for DNS message encoding/decoding."""

import pytest

from repro.packets import (
    DNSMessage,
    DNSQuestion,
    DNSRecord,
    QTYPE_A,
    QTYPE_CNAME,
    QTYPE_MX,
    QTYPE_NS,
    QTYPE_TXT,
    RCODE_NXDOMAIN,
    RCODE_OK,
    qtype_name,
)


class TestQueryEncoding:
    def test_query_round_trip(self):
        query = DNSMessage.query("www.example.com", qtype=QTYPE_A, txid=0x1234)
        parsed = DNSMessage.from_bytes(query.to_bytes())
        assert parsed.txid == 0x1234
        assert not parsed.is_response
        assert parsed.question.name == "www.example.com"
        assert parsed.question.qtype == QTYPE_A
        assert parsed.recursion_desired

    def test_name_case_normalized(self):
        query = DNSMessage.query("WwW.Example.COM")
        parsed = DNSMessage.from_bytes(query.to_bytes())
        assert parsed.question.name == "www.example.com"

    def test_trailing_dot_stripped(self):
        query = DNSMessage.query("example.com.")
        parsed = DNSMessage.from_bytes(query.to_bytes())
        assert parsed.question.name == "example.com"

    def test_label_too_long_raises(self):
        with pytest.raises(ValueError):
            DNSMessage.query("a" * 64 + ".com").to_bytes()


class TestResponses:
    def test_reply_echoes_txid_and_question(self):
        query = DNSMessage.query("example.com", txid=77)
        reply = query.reply(answers=[DNSRecord("example.com", QTYPE_A, "1.2.3.4")])
        parsed = DNSMessage.from_bytes(reply.to_bytes())
        assert parsed.txid == 77
        assert parsed.is_response
        assert parsed.question.name == "example.com"
        assert parsed.a_records() == ["1.2.3.4"]

    def test_nxdomain_rcode(self):
        query = DNSMessage.query("nosuch.example")
        reply = query.reply(rcode=RCODE_NXDOMAIN)
        parsed = DNSMessage.from_bytes(reply.to_bytes())
        assert parsed.rcode == RCODE_NXDOMAIN
        assert parsed.answers == []

    def test_mx_record_round_trip(self):
        reply = DNSMessage(
            txid=1,
            is_response=True,
            answers=[DNSRecord("example.com", QTYPE_MX, (10, "mail.example.com"))],
        )
        parsed = DNSMessage.from_bytes(reply.to_bytes())
        assert parsed.mx_records() == [(10, "mail.example.com")]

    def test_ns_and_cname_round_trip(self):
        reply = DNSMessage(
            txid=2,
            is_response=True,
            answers=[
                DNSRecord("example.com", QTYPE_NS, "ns1.example.com"),
                DNSRecord("www.example.com", QTYPE_CNAME, "example.com"),
            ],
        )
        parsed = DNSMessage.from_bytes(reply.to_bytes())
        assert parsed.answers[0].data == "ns1.example.com"
        assert parsed.answers[1].data == "example.com"

    def test_txt_round_trip(self):
        reply = DNSMessage(
            txid=3,
            is_response=True,
            answers=[DNSRecord("example.com", QTYPE_TXT, "v=spf1 -all")],
        )
        parsed = DNSMessage.from_bytes(reply.to_bytes())
        assert parsed.answers[0].data == "v=spf1 -all"

    def test_multiple_answers(self):
        reply = DNSMessage(
            txid=4,
            is_response=True,
            answers=[
                DNSRecord("example.com", QTYPE_A, "1.1.1.1"),
                DNSRecord("example.com", QTYPE_A, "2.2.2.2"),
            ],
        )
        parsed = DNSMessage.from_bytes(reply.to_bytes())
        assert parsed.a_records() == ["1.1.1.1", "2.2.2.2"]

    def test_authority_and_additional_sections(self):
        message = DNSMessage(
            txid=5,
            is_response=True,
            authority=[DNSRecord("example.com", QTYPE_NS, "ns1.example.com")],
            additional=[DNSRecord("ns1.example.com", QTYPE_A, "9.9.9.9")],
        )
        parsed = DNSMessage.from_bytes(message.to_bytes())
        assert len(parsed.authority) == 1
        assert len(parsed.additional) == 1
        assert parsed.additional[0].data == "9.9.9.9"


class TestCompression:
    def test_decode_compressed_name(self):
        # Hand-built message with a compression pointer in the answer name.
        # Header: txid=1, response, 1 question, 1 answer.
        import struct

        header = struct.pack("!HHHHHH", 1, 0x8180, 1, 1, 0, 0)
        qname = b"\x07example\x03com\x00"
        question = qname + struct.pack("!HH", QTYPE_A, 1)
        # Answer name is a pointer to offset 12 (start of qname).
        answer = b"\xc0\x0c" + struct.pack("!HHIH", QTYPE_A, 1, 300, 4) + bytes(
            [1, 2, 3, 4]
        )
        parsed = DNSMessage.from_bytes(header + question + answer)
        assert parsed.answers[0].name == "example.com"
        assert parsed.answers[0].data == "1.2.3.4"

    def test_compression_loop_rejected(self):
        import struct

        header = struct.pack("!HHHHHH", 1, 0x8180, 1, 0, 0, 0)
        # A name that points at itself.
        question = b"\xc0\x0c" + struct.pack("!HH", QTYPE_A, 1)
        with pytest.raises(ValueError):
            DNSMessage.from_bytes(header + question)


class TestMisc:
    def test_truncated_header_raises(self):
        with pytest.raises(ValueError):
            DNSMessage.from_bytes(b"\x00" * 6)

    def test_question_none_when_empty(self):
        assert DNSMessage().question is None

    def test_qtype_name(self):
        assert qtype_name(QTYPE_A) == "A"
        assert qtype_name(QTYPE_MX) == "MX"
        assert qtype_name(250) == "TYPE250"

    def test_question_key_normalizes(self):
        assert DNSQuestion("Example.COM.").key() == ("example.com", QTYPE_A)
