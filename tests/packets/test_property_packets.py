"""Property-based tests: wire-format round-trips always hold."""

import string

from hypothesis import given, settings, strategies as st

from repro.packets import (
    DNSMessage,
    DNSRecord,
    EmailMessage,
    HTTPRequest,
    ICMPMessage,
    IPPacket,
    QTYPE_A,
    QTYPE_MX,
    TCPSegment,
    UDPDatagram,
    int_to_ip,
    internet_checksum,
)

ips = st.integers(min_value=0, max_value=0xFFFFFFFF).map(int_to_ip)
ports = st.integers(min_value=0, max_value=65535)
payloads = st.binary(max_size=256)
labels = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=20)
names = st.lists(labels, min_size=1, max_size=4).map(".".join)


@given(data=st.binary(max_size=512))
def test_checksum_in_range_and_verifies(data):
    cksum = internet_checksum(data)
    assert 0 <= cksum <= 0xFFFF
    padded = data if len(data) % 2 == 0 else data + b"\x00"
    assert internet_checksum(padded + cksum.to_bytes(2, "big")) in (0, 0xFFFF)


@given(src=ips, dst=ips, sport=ports, dport=ports,
       seq=st.integers(min_value=0, max_value=2**32 - 1),
       ack=st.integers(min_value=0, max_value=2**32 - 1),
       flags=st.integers(min_value=0, max_value=0x3F),
       ttl=st.integers(min_value=1, max_value=255),
       payload=payloads)
def test_ip_tcp_round_trip(src, dst, sport, dport, seq, ack, flags, ttl, payload):
    packet = IPPacket(
        src=src, dst=dst, ttl=ttl,
        payload=TCPSegment(sport=sport, dport=dport, seq=seq, ack=ack,
                           flags=flags, payload=payload),
    )
    parsed = IPPacket.from_bytes(packet.to_bytes())
    assert (parsed.src, parsed.dst, parsed.ttl) == (src, dst, ttl)
    tcp = parsed.tcp
    assert (tcp.sport, tcp.dport, tcp.seq, tcp.ack, tcp.flags, tcp.payload) == (
        sport, dport, seq, ack, flags, payload
    )


@given(src=ips, dst=ips, sport=ports, dport=ports, payload=payloads)
def test_ip_udp_round_trip(src, dst, sport, dport, payload):
    packet = IPPacket(src=src, dst=dst,
                      payload=UDPDatagram(sport=sport, dport=dport, payload=payload))
    parsed = IPPacket.from_bytes(packet.to_bytes())
    assert parsed.udp.payload == payload
    assert parsed.udp.sport == sport


@given(icmp_type=st.integers(min_value=0, max_value=255),
       code=st.integers(min_value=0, max_value=255),
       ident=ports, sequence=ports, payload=payloads)
def test_icmp_round_trip(icmp_type, code, ident, sequence, payload):
    message = ICMPMessage(icmp_type=icmp_type, code=code, ident=ident,
                          sequence=sequence, payload=payload)
    parsed = ICMPMessage.from_bytes(message.to_bytes())
    assert parsed == message


@given(name=names, txid=ports, address=ips, preference=st.integers(0, 65535),
       exchange=names)
def test_dns_round_trip(name, txid, address, preference, exchange):
    message = DNSMessage(
        txid=txid,
        is_response=True,
        answers=[
            DNSRecord(name, QTYPE_A, address),
            DNSRecord(name, QTYPE_MX, (preference, exchange)),
        ],
    )
    parsed = DNSMessage.from_bytes(message.to_bytes())
    assert parsed.txid == txid
    assert parsed.a_records() == [address]
    assert parsed.mx_records() == [(preference, exchange)]


@given(path=st.text(alphabet=string.ascii_letters + string.digits + "/_-.", min_size=1, max_size=40),
       host=names, body=payloads)
def test_http_request_round_trip(path, host, body):
    request = HTTPRequest(method="POST", path="/" + path, host=host, body=body)
    parsed = HTTPRequest.from_bytes(request.to_bytes())
    assert parsed.path == "/" + path
    assert parsed.host == host
    assert parsed.body == body


_header_text = st.text(
    alphabet=string.ascii_letters + string.digits + " .@-_", max_size=40
)


@given(sender=_header_text, recipient=_header_text, subject=_header_text,
       body=st.text(alphabet=string.printable.replace("\r", "").replace("\n", ""), max_size=200))
def test_email_round_trip(sender, recipient, subject, body):
    message = EmailMessage(sender=sender.strip(), recipient=recipient.strip(),
                           subject=subject.strip(), body=body)
    parsed = EmailMessage.from_text(message.to_text())
    assert parsed.sender == sender.strip()
    assert parsed.subject == subject.strip()
    assert parsed.body == body
