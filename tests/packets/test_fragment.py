"""Tests for IPv4 fragmentation and reassembly."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.packets import (
    FragmentReassembler,
    IPPacket,
    PSH,
    ACK,
    TCPSegment,
    UDPDatagram,
    fragment,
)


def big_packet(size=1000, protocol_payload=None):
    payload = protocol_payload or UDPDatagram(sport=5, dport=9, payload=b"x" * size)
    return IPPacket(src="10.0.0.1", dst="10.0.0.2", payload=payload, flags=0)


class TestFragment:
    def test_small_packet_untouched(self):
        packet = big_packet(10)
        assert fragment(packet, mtu=1500) == [packet]

    def test_fragments_fit_mtu(self):
        for frag in fragment(big_packet(2000), mtu=500):
            assert len(frag.to_bytes()) <= 500

    def test_offsets_eight_byte_aligned(self):
        frags = fragment(big_packet(2000), mtu=500)
        sizes = [len(f.payload) for f in frags[:-1]]
        assert all(size % 8 == 0 for size in sizes)

    def test_mf_flags(self):
        frags = fragment(big_packet(2000), mtu=500)
        assert all(f.flags & 0x1 for f in frags[:-1])
        assert not frags[-1].flags & 0x1

    def test_shared_ident(self):
        packet = big_packet(2000)
        packet.ident = 777
        frags = fragment(packet, mtu=500)
        assert all(f.ident == 777 for f in frags)

    def test_df_packet_raises(self):
        packet = big_packet(2000)
        packet.flags = 0x2  # DF
        with pytest.raises(ValueError):
            fragment(packet, mtu=500)

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ValueError):
            fragment(big_packet(100), mtu=20)


class TestReassembler:
    def test_round_trip_in_order(self):
        packet = big_packet(1500)
        reasm = FragmentReassembler()
        rebuilt = None
        for frag in fragment(packet, mtu=400):
            rebuilt = reasm.feed(frag, now=0.0)
        assert rebuilt is not None
        assert rebuilt.udp.payload == b"x" * 1500
        assert reasm.reassembled == 1

    def test_round_trip_out_of_order(self):
        packet = big_packet(1500)
        frags = fragment(packet, mtu=400)
        reasm = FragmentReassembler()
        rebuilt = [reasm.feed(f, now=0.0) for f in reversed(frags)]
        final = [r for r in rebuilt if r is not None]
        assert len(final) == 1
        assert final[0].udp.payload == b"x" * 1500

    def test_non_fragment_passthrough(self):
        packet = big_packet(10)
        reasm = FragmentReassembler()
        assert reasm.feed(packet, now=0.0) is packet

    def test_incomplete_group_returns_none(self):
        frags = fragment(big_packet(1500), mtu=400)
        reasm = FragmentReassembler()
        assert reasm.feed(frags[0], now=0.0) is None
        assert reasm.pending_groups == 1

    def test_timeout_expires_group(self):
        frags = fragment(big_packet(1500), mtu=400)
        reasm = FragmentReassembler(timeout=5.0)
        reasm.feed(frags[0], now=0.0)
        reasm.feed(IPPacket(src="9.9.9.9", dst="8.8.8.8", payload=b"z" * 8,
                            protocol=17, flags=0x1, frag_offset=0), now=10.0)
        assert reasm.expired == 1

    def test_groups_keyed_by_ident(self):
        a = big_packet(1500)
        b = big_packet(1500)
        a.ident, b.ident = 1, 2
        reasm = FragmentReassembler()
        frags_a = fragment(a, mtu=400)
        frags_b = fragment(b, mtu=400)
        # Interleave two groups; both must complete independently.
        outcomes = []
        for fa, fb in zip(frags_a, frags_b):
            outcomes.append(reasm.feed(fa, now=0.0))
            outcomes.append(reasm.feed(fb, now=0.0))
        assert sum(1 for o in outcomes if o is not None) == 2

    @settings(max_examples=40, deadline=None)
    @given(size=st.integers(1, 3000), mtu=st.integers(68, 600))
    def test_property_round_trip(self, size, mtu):
        packet = big_packet(size)
        frags = fragment(packet, mtu=mtu)
        reasm = FragmentReassembler()
        rebuilt = None
        for frag in frags:
            result = reasm.feed(frag, now=0.0)
            if result is not None:
                rebuilt = result
        assert rebuilt is not None
        assert rebuilt.udp.payload == b"x" * size


class TestEndToEndFragmentation:
    def test_fragmented_datagram_delivered(self):
        """Host stacks reassemble: a fragmented send arrives whole."""
        from repro.netsim import build_three_node

        topo = build_three_node(seed=23)
        received = []
        topo.server.stack.udp_listen(9, lambda data, *rest: received.append(data))
        packet = IPPacket(src=topo.client.ip, dst=topo.server.ip, flags=0,
                          payload=UDPDatagram(sport=5, dport=9, payload=b"y" * 900))
        for frag in fragment(packet, mtu=300):
            topo.client.send_raw(frag)
        topo.run()
        assert received == [b"y" * 900]

    def _keyword_over_fragments(self, reassemble):
        """Establish a real TCP flow, then send the keyword-bearing data
        segment split across IP fragments."""
        from repro.censor import GreatFirewall
        from repro.netsim import WebServer, build_three_node
        from repro.packets import SYN

        topo = build_three_node(seed=23)
        censor = GreatFirewall()
        censor.policy.reassemble_fragments = reassemble
        topo.switch.add_tap(censor)
        web = WebServer(topo.server)
        client, server = topo.client, topo.server
        # The raw-socket measurement tool suppresses the kernel's RST to
        # unsolicited SYN/ACKs (what nmap does with firewall rules).
        client.stack.closed_port_rst = False
        sport, client_isn = 45000, 1000
        state = {}

        def sniff(packet):
            if packet.tcp is not None and packet.tcp.is_synack:
                state["server_isn"] = packet.tcp.seq

        client.stack.add_sniffer(sniff)
        client.send_raw(IPPacket(
            src=client.ip, dst=server.ip,
            payload=TCPSegment(sport=sport, dport=80, seq=client_isn, flags=SYN),
        ))
        topo.run()

        def seg(flags, seq, data=b""):
            return IPPacket(
                src=client.ip, dst=server.ip, flags=0,
                payload=TCPSegment(sport=sport, dport=80, seq=seq,
                                   ack=state["server_isn"] + 1,
                                   flags=flags, payload=data),
            )

        client.send_raw(seg(ACK, client_isn + 1))
        topo.run()
        request = b"GET /falun-material HTTP/1.1\r\nHost: x\r\n\r\n"
        data_packet = seg(PSH | ACK, client_isn + 1, request)
        for frag in fragment(data_packet, mtu=36):  # 16-byte payload pieces
            client.send_raw(frag)
        topo.run()
        return topo, censor, web

    def test_non_reassembling_censor_evaded(self):
        """The classic evasion: a keyword split across IP fragments is
        invisible to a censor without fragment reassembly."""
        _topo, censor, web = self._keyword_over_fragments(reassemble=False)
        assert censor.events_by_mechanism("keyword") == []
        # The server itself reassembled fine and saw the keyword request.
        assert web.request_log
        assert "falun" in web.request_log[0].path

    def test_reassembling_censor_catches_split_keyword(self):
        _topo, censor, _web = self._keyword_over_fragments(reassemble=True)
        events = censor.events_by_mechanism("keyword")
        assert len(events) == 1
        assert "(reassembled)" in events[0].detail
