"""Tests for TLS record modelling and SNI-filtering measurement."""

import pytest

from repro.core import TLSReachabilityMeasurement, Verdict, build_environment
from repro.netsim import TLSServer, tls_probe
from repro.packets import ClientHello, ServerHello, sni_of, tls_alert


class TestTLSRecords:
    def test_client_hello_round_trip(self):
        hello = ClientHello(server_name="twitter.com")
        assert sni_of(hello.to_bytes()) == "twitter.com"
        assert ClientHello.from_bytes(hello.to_bytes()).server_name == "twitter.com"

    def test_sni_bytes_visible_in_plaintext(self):
        """The content-match premise: the raw domain appears on the wire."""
        assert b"twitter.com" in ClientHello(server_name="twitter.com").to_bytes()

    def test_sni_of_rejects_non_tls(self):
        assert sni_of(b"GET / HTTP/1.1\r\n\r\n") is None
        assert sni_of(b"") is None
        assert sni_of(b"\x16\x03\x03\x00\x05junk?") is None

    def test_server_hello_detection(self):
        assert ServerHello.is_server_hello(ServerHello().to_bytes())
        assert not ServerHello.is_server_hello(ClientHello("x.com").to_bytes())

    def test_alert_record_framing(self):
        alert = tls_alert(40)
        assert alert[0] == 0x15
        assert alert[-1] == 40

    def test_session_id_round_trip(self):
        hello = ClientHello(server_name="a.example", session_id=b"\xaa" * 8)
        assert sni_of(hello.to_bytes()) == "a.example"


class TestTLSProbe:
    def test_handshake_against_server(self):
        from repro.netsim import build_three_node

        topo = build_three_node(seed=28)
        server = TLSServer(topo.server)
        results = []
        tls_probe(topo.client, topo.server.ip, "example.org", callback=results.append)
        topo.run()
        assert results[0].ok
        assert server.sni_log == ["example.org"]

    def test_timeout_against_closed_port(self):
        from repro.netsim import build_three_node

        topo = build_three_node(seed=28)
        results = []
        tls_probe(topo.client, topo.server.ip, "example.org",
                  callback=results.append, timeout=0.5)
        topo.run()
        assert results[0].status == "reset"  # closed port answers RST


class TestSNIMeasurement:
    def test_sni_filtering_detected(self):
        env = build_environment(censored=True, seed=28, population_size=4)
        env.censor.policy.dns_poisoning = False  # isolate the TLS layer
        technique = TLSReachabilityMeasurement(env.ctx, ["twitter.com", "example.org"])
        technique.start()
        env.run(duration=60.0)
        verdicts = {r.target: r.verdict for r in technique.results}
        assert verdicts["twitter.com"] is Verdict.BLOCKED_RST
        assert verdicts["example.org"] is Verdict.ACCESSIBLE

    def test_decoy_control_identifies_name_keyed_block(self):
        env = build_environment(censored=True, seed=28, population_size=4)
        env.censor.policy.dns_poisoning = False
        technique = TLSReachabilityMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=60.0)
        result = technique.results[0]
        assert result.evidence["control_status"] == "ok"
        assert "name-keyed block" in result.detail

    def test_open_network_all_reachable(self):
        env = build_environment(censored=False, seed=28, population_size=4)
        technique = TLSReachabilityMeasurement(env.ctx, ["twitter.com", "example.org"])
        technique.start()
        env.run(duration=60.0)
        assert all(r.verdict is Verdict.ACCESSIBLE for r in technique.results)
        assert technique.done

    def test_dns_stage_short_circuits(self):
        env = build_environment(censored=True, seed=28, population_size=4)
        technique = TLSReachabilityMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=60.0)
        assert technique.results[0].verdict is Verdict.DNS_POISONED
        assert technique.results[0].evidence["stage"] == "dns"

    def test_censor_records_sni_mechanism(self):
        env = build_environment(censored=True, seed=28, population_size=4)
        env.censor.policy.dns_poisoning = False
        technique = TLSReachabilityMeasurement(env.ctx, ["twitter.com"],
                                               run_control=False)
        technique.start()
        env.run(duration=60.0)
        sni_events = [e for e in env.censor.events if "SNI" in e.detail]
        assert sni_events
