"""Retry policy and verdict-confidence unit tests.

The policy is the paper-safety mechanism that separates "the censor
dropped it" from "the path dropped it": exponential backoff decorrelates
retries from loss bursts, and the consistent-failure floor keeps one
lost packet from becoming a ``blocked`` verdict.
"""

import random

import pytest

from repro.core import (
    MeasurementContext,
    RetryPolicy,
    ScanMeasurement,
    ScanTarget,
    Verdict,
    aggregate_attempts,
)
from repro.core.scheduler import MeasurementCampaign
from repro.netsim import GilbertElliottLoss, WebServer, build_three_node


class TestRetryPolicy:
    def test_backoff_schedule_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.25, backoff=2.0)
        assert policy.schedule() == [0.25, 0.5, 1.0]

    def test_delay_before_without_rng_is_jitter_free(self):
        policy = RetryPolicy(base_delay=0.1, backoff=3.0, jitter=0.5)
        assert policy.delay_before(1) == pytest.approx(0.1)
        assert policy.delay_before(2) == pytest.approx(0.3)
        assert policy.delay_before(3) == pytest.approx(0.9)

    def test_jitter_is_bounded_and_non_negative(self):
        policy = RetryPolicy(base_delay=0.2, backoff=2.0, jitter=0.25)
        rng = random.Random(1)
        for attempt in (1, 2, 3):
            base = 0.2 * 2.0 ** (attempt - 1)
            for _ in range(50):
                delay = policy.delay_before(attempt, rng)
                assert base <= delay <= base * 1.25

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_before(0)

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_single_shot_reproduces_legacy_behaviour(self):
        policy = RetryPolicy.single_shot()
        assert policy.max_attempts == 1
        assert policy.min_consistent_failures == 1
        assert not policy.retries_enabled
        assert policy.schedule() == []

    def test_context_default_is_single_shot(self):
        topo = build_three_node(seed=1)
        ctx = MeasurementContext(client=topo.client)
        assert not ctx.retry_policy.retries_enabled


class TestAggregateAttempts:
    def test_empty_is_inconclusive(self):
        assert aggregate_attempts([]) == (Verdict.INCONCLUSIVE, 0.0)

    def test_any_success_proves_reachability(self):
        verdict, confidence = aggregate_attempts(
            [Verdict.BLOCKED_TIMEOUT, Verdict.ACCESSIBLE, Verdict.BLOCKED_TIMEOUT]
        )
        assert verdict is Verdict.ACCESSIBLE
        assert confidence == pytest.approx(1 / 3)

    def test_single_failure_below_floor_is_inconclusive(self):
        verdict, confidence = aggregate_attempts(
            [Verdict.BLOCKED_TIMEOUT], min_consistent_failures=2
        )
        assert verdict is Verdict.INCONCLUSIVE
        assert confidence == pytest.approx(0.5)

    def test_consistent_failures_reach_blocked(self):
        verdict, confidence = aggregate_attempts(
            [Verdict.BLOCKED_TIMEOUT] * 3, min_consistent_failures=2
        )
        assert verdict is Verdict.BLOCKED_TIMEOUT
        assert confidence == pytest.approx(1.0)

    def test_dominant_blocking_verdict_wins(self):
        verdict, confidence = aggregate_attempts(
            [Verdict.BLOCKED_RST, Verdict.BLOCKED_RST, Verdict.BLOCKED_TIMEOUT],
            min_consistent_failures=2,
        )
        assert verdict is Verdict.BLOCKED_RST
        assert confidence == pytest.approx(2 / 3)

    def test_failing_controls_downgrade_to_inconclusive(self):
        """When the known-open controls fail too, the measurement saw the
        path (loss, outage), not the censor."""
        verdict, confidence = aggregate_attempts(
            [Verdict.BLOCKED_TIMEOUT] * 3,
            min_consistent_failures=2,
            control_outcomes=[Verdict.BLOCKED_TIMEOUT, Verdict.BLOCKED_TIMEOUT],
        )
        assert verdict is Verdict.INCONCLUSIVE
        assert confidence == 0.0

    def test_healthy_controls_leave_verdict_standing(self):
        verdict, _ = aggregate_attempts(
            [Verdict.BLOCKED_TIMEOUT] * 3,
            min_consistent_failures=2,
            control_outcomes=[Verdict.ACCESSIBLE, Verdict.ACCESSIBLE],
        )
        assert verdict is Verdict.BLOCKED_TIMEOUT


class TestRetryingScanUnderLoss:
    def _scan(self, policy):
        topo = build_three_node(seed=23)
        WebServer(topo.server)
        topo.network.impair_all_links(
            [GilbertElliottLoss.from_marginal(0.15, mean_burst_length=4.0)]
        )
        ctx = MeasurementContext(client=topo.client, retry_policy=policy)
        technique = ScanMeasurement(
            ctx,
            [ScanTarget(topo.server.ip, [80], "server")],
            port_count=60,
            timeout=1.0,
        )
        technique.start()
        topo.sim.run(until=topo.sim.now + 120.0)
        assert technique.done
        return technique.results[0]

    def test_retries_resolve_what_single_shot_false_blocks(self):
        """No censor exists, yet the single-shot scan leaves ports
        unresolved (false blocks); the retrying scan clears them all."""
        single = self._scan(RetryPolicy.single_shot(timeout=1.0))
        # 15% marginal loss per link direction compounds to roughly a
        # one-in-four failure per attempt round trip, so clearing all 60
        # ports needs a deeper attempt budget than the 5%-loss scenarios.
        retried = self._scan(RetryPolicy(max_attempts=7, timeout=1.0))
        assert single.evidence["unresolved_ports"] > 0
        assert retried.evidence["unresolved_ports"] == 0
        assert retried.verdict is Verdict.ACCESSIBLE
        assert retried.attempts > 1


class TestRunUntilDone:
    def test_campaign_stops_at_completion(self):
        topo = build_three_node(seed=5)
        ctx = MeasurementContext(
            client=topo.client, retry_policy=RetryPolicy(max_attempts=3, timeout=1.0)
        )
        technique = ScanMeasurement(
            ctx, [ScanTarget(topo.server.ip, [80], "server")], port_count=10,
            timeout=1.0,
        )
        campaign = MeasurementCampaign(topo.sim).add(technique)
        completed = campaign.run_until_done(max_duration=300.0)
        assert completed
        assert technique.done
        # Lossless: one round suffices, so we stop far before the cap.
        assert topo.sim.now < 60.0
