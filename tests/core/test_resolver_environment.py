"""Tests for the resolver-in-AS evaluation environment."""

import pytest

from repro.core import (
    OvertDNSMeasurement,
    SpamMeasurement,
    Verdict,
    build_environment,
)


class TestResolverInAS:
    def test_environment_exposes_resolver(self):
        env = build_environment(censored=False, seed=19, population_size=4,
                                resolver_in_as=True)
        assert env.local_resolver is not None
        assert env.ctx.resolver_ip == "10.1.250.53"

    def test_resolution_works_through_resolver(self):
        env = build_environment(censored=False, seed=19, population_size=4,
                                resolver_in_as=True)
        technique = OvertDNSMeasurement(env.ctx, ["example.org"])
        technique.start()
        env.run(duration=30.0)
        assert technique.results[0].verdict is Verdict.ACCESSIBLE
        assert env.local_resolver.upstream_queries == 1

    def test_poisoning_detected_through_resolver(self):
        """The forged answer poisons the resolver's upstream lookup; the
        client still observes it, via the cache."""
        env = build_environment(censored=True, seed=19, population_size=4,
                                resolver_in_as=True)
        technique = OvertDNSMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=30.0)
        assert technique.results[0].verdict is Verdict.DNS_POISONED
        # The poison is now cached inside the AS.
        cached = env.local_resolver.cached_answer("twitter.com")
        assert cached is not None
        assert cached.a_records() == [env.censor.policy.poison_ip]

    def test_spam_method_through_resolver(self):
        env = build_environment(censored=True, seed=19, population_size=4,
                                resolver_in_as=True)
        technique = SpamMeasurement(env.ctx, ["twitter.com", "example.org"])
        technique.start()
        env.run(duration=30.0)
        verdicts = {r.target: r.verdict for r in technique.results}
        assert verdicts["twitter.com"] is Verdict.DNS_POISONED
        assert verdicts["example.org"] is Verdict.ACCESSIBLE

    def test_client_dns_hidden_from_border(self):
        """Measurement DNS queries no longer cross the border at all —
        the resolver's upstream lookup is the only visible artifact."""
        from repro.netsim import PacketCapture
        from repro.netsim.capture import dns_only

        env = build_environment(censored=True, seed=19, population_size=4,
                                resolver_in_as=True)
        capture = PacketCapture(predicate=dns_only)
        env.topo.border_router.add_tap(capture)
        technique = OvertDNSMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=30.0)
        sources = {cap.packet.src for cap in capture.packets}
        assert env.topo.measurement_client.ip not in sources
        assert "10.1.250.53" in sources
