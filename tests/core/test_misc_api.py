"""Tests for smaller public-API surfaces not covered elsewhere."""

import pytest

from repro.core import MeasurementResult, Verdict, build_environment
from repro.core.measurement import MeasurementContext, MeasurementTechnique
from repro.packets import EmailMessage, IPPacket, SYN, TCPSegment
from repro.packets.smtp import dialog_script
from repro.rules import RuleEngine
from repro.surveillance.classify import (
    classify_alerts,
    has_discardable_alert,
    has_retainable_alert,
)


class TestSubscribers:
    def test_on_result_callback_fires(self):
        env = build_environment(censored=False, seed=31, population_size=3)

        class OneShot(MeasurementTechnique):
            name = "oneshot"

            def start(self):
                self._emit(MeasurementResult("oneshot", "x", Verdict.ACCESSIBLE))

        technique = OneShot(env.ctx)
        seen = []
        technique.on_result(seen.append)
        technique.start()
        assert len(seen) == 1
        assert seen[0].technique == "oneshot"
        assert seen[0].time == env.sim.now

    def test_base_start_not_implemented(self):
        env = build_environment(censored=False, seed=31, population_size=3)
        technique = MeasurementTechnique(env.ctx)
        with pytest.raises(NotImplementedError):
            technique.start()


class TestClassifyHelpers:
    def _alerts(self, classtype):
        engine = RuleEngine.from_text(
            f'alert tcp any any -> any any (msg:"m"; flags:S; '
            f"classtype:{classtype}; sid:1;)"
        )
        packet = IPPacket(src="1.1.1.1", dst="2.2.2.2",
                          payload=TCPSegment(sport=1, dport=2, flags=SYN))
        return engine.process(packet, 0.0)

    def test_classify_alerts_maps_classtypes(self):
        assert classify_alerts(self._alerts("attempted-recon")) == "scan"
        assert classify_alerts(self._alerts("denial-of-service")) == "ddos"
        assert classify_alerts(self._alerts("spam")) == "spam"
        assert classify_alerts(self._alerts("p2p")) == "p2p"
        assert classify_alerts(self._alerts("censorship-interest")) is None
        assert classify_alerts([]) is None

    def test_retainable_and_discardable(self):
        interest = self._alerts("censorship-interest")
        commodity = self._alerts("attempted-recon")
        assert has_retainable_alert(interest)
        assert not has_retainable_alert(commodity)
        assert has_discardable_alert(commodity)
        assert not has_discardable_alert(interest)


class TestSMTPDialogScript:
    def test_script_order(self):
        message = EmailMessage("a@b.com", "c@d.com", "s", "body")
        script = dialog_script(message, helo_name="probe.example")
        verbs = [command.verb for command in script]
        assert verbs == ["HELO", "MAIL", "RCPT", "DATA"]
        assert script[0].argument == "probe.example"
        assert "a@b.com" in script[1].argument
        assert "c@d.com" in script[2].argument


class TestMeasurementContext:
    def test_default_poison_ips_include_known_injectors(self):
        env = build_environment(censored=False, seed=31, population_size=3)
        assert "8.7.198.45" in env.ctx.known_poison_ips

    def test_sim_property(self):
        env = build_environment(censored=False, seed=31, population_size=3)
        assert env.ctx.sim is env.sim
