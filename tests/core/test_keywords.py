"""Tests for keyword probing and ConceptDoppler-style isolation."""

import pytest

from repro.core import Verdict, build_environment
from repro.core.keywords import KeywordIsolator, KeywordProbeMeasurement


@pytest.fixture
def env():
    environment = build_environment(censored=True, seed=17, population_size=4)
    environment.censor.policy.dns_poisoning = False
    return environment


class TestKeywordProbe:
    def _run(self, env, keywords):
        technique = KeywordProbeMeasurement(
            env.ctx, keywords, env.topo.control_web.ip, hostname="example.org"
        )
        technique.start()
        env.run(duration=60.0)
        return technique

    def test_censored_keywords_detected(self, env):
        technique = self._run(env, ["falun", "weather", "tiananmen", "recipes"])
        verdicts = {r.target: r.verdict for r in technique.results}
        assert verdicts["falun"] is Verdict.BLOCKED_RST
        assert verdicts["tiananmen"] is Verdict.BLOCKED_RST
        assert verdicts["weather"] is Verdict.ACCESSIBLE
        assert verdicts["recipes"] is Verdict.ACCESSIBLE
        assert sorted(technique.censored_keywords()) == ["falun", "tiananmen"]

    def test_open_network_nothing_censored(self):
        env = build_environment(censored=False, seed=17, population_size=4)
        technique = KeywordProbeMeasurement(
            env.ctx, ["falun", "weather"], env.topo.control_web.ip,
            hostname="example.org",
        )
        technique.start()
        env.run(duration=60.0)
        assert technique.censored_keywords() == []

    def test_broken_path_yields_inconclusive(self, env):
        env.censor.policy.blocked_ips.add(env.topo.control_web.ip)
        technique = self._run(env, ["falun", "weather"])
        assert all(r.verdict is Verdict.INCONCLUSIVE for r in technique.results)
        assert "control probe failed" in technique.results[0].detail

    def test_done_property(self, env):
        technique = self._run(env, ["falun"])
        assert technique.done


class TestKeywordIsolator:
    def _isolate(self, env, terms, max_probes=64):
        isolator = KeywordIsolator(
            env.ctx, env.topo.control_web.ip, hostname="example.org",
            max_probes=max_probes,
        )
        found = []
        isolator.isolate(terms, found.append)
        env.run(duration=120.0)
        return isolator, (found[0] if found else None)

    def test_isolates_single_culprit(self, env):
        terms = ["alpha", "bravo", "falun", "delta", "echo", "foxtrot"]
        isolator, culprits = self._isolate(env, terms)
        assert culprits == ["falun"]

    def test_isolates_multiple_culprits(self, env):
        terms = ["alpha", "tiananmen", "bravo", "falun"]
        _isolator, culprits = self._isolate(env, terms)
        assert culprits == ["falun", "tiananmen"]

    def test_clean_terms_empty_result(self, env):
        _isolator, culprits = self._isolate(env, ["alpha", "bravo", "charlie"])
        assert culprits == []

    def test_probe_cost_logarithmic(self, env):
        terms = [f"term{i}" for i in range(15)] + ["falun"]
        isolator, culprits = self._isolate(env, terms)
        assert culprits == ["falun"]
        # Bisection: ~2*log2(16)+1 probes, far below linear scanning.
        assert isolator.probes_sent <= 12

    def test_probe_budget_respected(self, env):
        terms = ["falun"] * 1 + [f"t{i}" for i in range(7)]
        isolator, _culprits = self._isolate(env, terms, max_probes=2)
        assert isolator.probes_sent <= 2
