"""Tests for Method #1 (scanning-cloaked measurement)."""

import pytest

from repro.core import ScanMeasurement, ScanTarget, Verdict, top_ports
from repro.core.evaluation import build_environment


class TestTopPorts:
    def test_small_count_returns_head(self):
        assert top_ports(3) == [80, 23, 443]

    def test_large_count_fills_deterministically(self):
        ports = top_ports(200)
        assert len(ports) == 200
        assert len(set(ports)) == 200
        assert top_ports(200) == ports  # deterministic

    def test_thousand_ports(self):
        assert len(top_ports(1000)) == 1000


class TestScanTarget:
    def test_label_defaults_to_ip(self):
        target = ScanTarget("1.2.3.4", [80])
        assert target.label == "1.2.3.4"

    def test_requires_expected_ports(self):
        with pytest.raises(ValueError):
            ScanTarget("1.2.3.4", [])


class TestScanMeasurement:
    def _scan(self, env, port_count=40):
        targets = [
            ScanTarget(env.topo.blocked_web.ip, [80], "blocked-service"),
            ScanTarget(env.topo.control_web.ip, [80], "control-service"),
        ]
        technique = ScanMeasurement(env.ctx, targets, port_count=port_count)
        technique.start()
        env.run(duration=30.0)
        return technique

    def test_open_network_all_accessible(self):
        env = build_environment(censored=False, seed=20, population_size=4)
        technique = self._scan(env)
        verdicts = {r.target: r.verdict for r in technique.results}
        assert verdicts["blocked-service"] is Verdict.ACCESSIBLE
        assert verdicts["control-service"] is Verdict.ACCESSIBLE
        assert technique.done

    def test_null_route_detected_as_timeout(self):
        env = build_environment(censored=True, seed=20, population_size=4)
        env.censor.policy.blocked_ips.add(env.topo.blocked_web.ip)
        technique = self._scan(env)
        verdicts = {r.target: r.verdict for r in technique.results}
        assert verdicts["blocked-service"] is Verdict.BLOCKED_TIMEOUT
        assert verdicts["control-service"] is Verdict.ACCESSIBLE

    def test_rst_blocking_detected(self):
        env = build_environment(censored=True, seed=20, population_size=4)
        env.censor.policy.rst_endpoints.add((env.topo.blocked_web.ip, 80))
        technique = self._scan(env)
        verdicts = {r.target: r.verdict for r in technique.results}
        assert verdicts["blocked-service"] is Verdict.BLOCKED_RST

    def test_port_states_recorded(self):
        env = build_environment(censored=False, seed=20, population_size=4)
        technique = self._scan(env)
        evidence = technique.results[0].evidence
        assert evidence["port_states"][80] == "open"
        assert evidence["open_ports"] >= 1
        assert evidence["ports_scanned"] >= 40

    def test_scan_classified_as_recon_and_discarded(self):
        """The evasion half: the MVR must classify the scan as commodity
        recon, so the measurer gets no attributed alert."""
        env = build_environment(censored=True, seed=20, population_size=4)
        env.censor.policy.blocked_ips.add(env.topo.blocked_web.ip)
        self._scan(env, port_count=60)
        assert env.surveillance.attributed_alerts_for_user("measurer") == []
        assert env.surveillance.discarded_by_class.get("scan", 0) > 0

    def test_closed_ports_reported_closed(self):
        env = build_environment(censored=False, seed=20, population_size=4)
        technique = self._scan(env)
        states = technique.results[1].evidence["port_states"]
        closed = [port for port, state in states.items() if state == "closed"]
        assert closed  # most scanned ports are closed on the web server
