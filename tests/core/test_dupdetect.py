"""Tests for duplicate-DNS-response injection detection."""

import pytest

from repro.core import build_environment
from repro.core.dupdetect import DuplicateResponseDetector
from repro.netsim import resolve


class TestDuplicateDetection:
    def test_injection_produces_contradictory_duplicates(self):
        """Off-path injection cannot suppress the real answer, so the
        client sees both — and they disagree."""
        env = build_environment(censored=True, seed=14, population_size=3)
        detector = DuplicateResponseDetector(env.ctx.client)
        resolve(env.ctx.client, env.ctx.resolver_ip, "twitter.com",
                callback=lambda r: None)
        env.run(duration=10.0)
        pair = detector.pair_for("twitter.com")
        assert pair is not None
        assert pair.duplicated
        assert pair.contradictory
        answers = pair.distinct_answers()
        assert [env.censor.policy.poison_ip] in answers
        assert [env.topo.blocked_web.ip] in answers

    def test_forged_answer_arrives_first(self):
        """The injected response wins the race (it is born at the border)."""
        env = build_environment(censored=True, seed=14, population_size=3)
        detector = DuplicateResponseDetector(env.ctx.client)
        results = []
        resolve(env.ctx.client, env.ctx.resolver_ip, "twitter.com",
                callback=results.append)
        env.run(duration=10.0)
        assert results[0].addresses == [env.censor.policy.poison_ip]
        pair = detector.pair_for("twitter.com")
        assert pair.responses[0].a_records() == [env.censor.policy.poison_ip]

    def test_clean_resolution_single_response(self):
        env = build_environment(censored=True, seed=14, population_size=3)
        detector = DuplicateResponseDetector(env.ctx.client)
        resolve(env.ctx.client, env.ctx.resolver_ip, "example.org",
                callback=lambda r: None)
        env.run(duration=10.0)
        pair = detector.pair_for("example.org")
        assert pair is not None
        assert not pair.duplicated
        assert detector.injection_evidence() == []

    def test_censor_off_no_duplicates(self):
        env = build_environment(censored=False, seed=14, population_size=3)
        detector = DuplicateResponseDetector(env.ctx.client)
        for domain in ("twitter.com", "example.org"):
            resolve(env.ctx.client, env.ctx.resolver_ip, domain,
                    callback=lambda r: None)
        env.run(duration=10.0)
        assert detector.duplicate_rate() == 0.0

    def test_duplicate_rate(self):
        env = build_environment(censored=True, seed=14, population_size=3)
        detector = DuplicateResponseDetector(env.ctx.client)
        for domain in ("twitter.com", "youtube.com", "example.org", "weather.gov"):
            resolve(env.ctx.client, env.ctx.resolver_ip, domain,
                    callback=lambda r: None)
        env.run(duration=10.0)
        assert detector.duplicate_rate() == pytest.approx(0.5)
        assert len(detector.injection_evidence()) == 2

    def test_detection_needs_no_ground_truth(self):
        """Unlike poison-IP lists, duplicate detection is self-contained."""
        env = build_environment(censored=True, seed=14, population_size=3)
        env.ctx.known_poison_ips = frozenset()      # no list
        env.ctx.expected_addresses = {}             # no expectations
        detector = DuplicateResponseDetector(env.ctx.client)
        resolve(env.ctx.client, env.ctx.resolver_ip, "twitter.com",
                callback=lambda r: None)
        env.run(duration=10.0)
        assert detector.injection_evidence()
