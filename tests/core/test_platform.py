"""Tests for the measurement platform and its risk postures."""

import json

import pytest

from repro.core import build_environment
from repro.core.platform import MeasurementPlatform, RISK_POSTURES

DOMAINS = ["twitter.com", "example.org"]


def run_platform(posture, censored=True, seed=22):
    env = build_environment(censored=censored, seed=seed, population_size=14)
    platform = MeasurementPlatform(env, posture=posture)
    report = platform.run_deck(DOMAINS, duration=120.0)
    return env, report


class TestPostures:
    def test_unknown_posture_rejected(self):
        env = build_environment(censored=False, seed=22, population_size=4)
        with pytest.raises(ValueError):
            MeasurementPlatform(env, posture="reckless")

    @pytest.mark.parametrize("posture", RISK_POSTURES)
    def test_every_posture_finds_the_blocking(self, posture):
        _env, report = run_platform(posture)
        assert report.blocked_domains() == ["twitter.com"]

    @pytest.mark.parametrize("posture", RISK_POSTURES)
    def test_every_posture_clean_when_open(self, posture):
        _env, report = run_platform(posture, censored=False)
        assert report.blocked_domains() == []

    def test_overt_posture_attributed(self):
        env, report = run_platform("overt", censored=False)
        # Open network so the HTTP content flows and the interest rule fires.
        assert not report.risk.evaded

    def test_stealthy_posture_evades(self):
        _env, report = run_platform("stealthy")
        assert report.risk.evaded

    def test_paranoid_posture_diluted(self):
        _env, report = run_platform("paranoid")
        assert report.risk.attribution_confidence < 0.5


class TestDeckReport:
    def test_deck_runs_all_tests(self):
        _env, report = run_platform("stealthy")
        assert set(report.results_by_test) == {
            "dns_consistency", "http_reachability", "tcp_reachability",
        }
        assert all(results for results in report.results_by_test.values())

    def test_json_document(self):
        _env, report = run_platform("stealthy")
        parsed = json.loads(report.to_json())
        assert parsed["metadata"]["posture"] == "stealthy"
        assert parsed["metadata"]["domains"] == DOMAINS
        assert "dns_consistency" in parsed["techniques"]
        assert parsed["risks"][0]["evaded"] is True
