"""Tests for the overt baseline measurements."""

import pytest

from repro.core import OvertDNSMeasurement, OvertHTTPMeasurement, Verdict
from repro.core.evaluation import build_environment


class TestOvertDNS:
    def test_detects_poisoning(self):
        env = build_environment(censored=True, seed=10, population_size=4)
        technique = OvertDNSMeasurement(env.ctx, ["twitter.com", "example.org"])
        technique.start()
        env.run(duration=20.0)
        verdicts = {r.target: r.verdict for r in technique.results}
        assert verdicts["twitter.com"] is Verdict.DNS_POISONED
        assert verdicts["example.org"] is Verdict.ACCESSIBLE

    def test_clean_network_all_accessible(self):
        env = build_environment(censored=False, seed=10, population_size=4)
        technique = OvertDNSMeasurement(env.ctx, ["twitter.com", "example.org"])
        technique.start()
        env.run(duration=20.0)
        assert all(r.verdict is Verdict.ACCESSIBLE for r in technique.results)
        assert technique.done

    def test_nxdomain_reported_as_dns_failure(self):
        env = build_environment(censored=False, seed=10, population_size=4)
        technique = OvertDNSMeasurement(env.ctx, ["no-such-name.example"])
        technique.start()
        env.run(duration=20.0)
        assert technique.results[0].verdict is Verdict.DNS_FAILURE

    def test_poison_detected_by_expectation_mismatch(self):
        """Even without the known-poison-IP list, out-of-band expected
        addresses expose the forged answer."""
        env = build_environment(censored=True, seed=10, population_size=4)
        env.ctx.known_poison_ips = frozenset()
        technique = OvertDNSMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=20.0)
        assert technique.results[0].verdict is Verdict.DNS_POISONED
        assert "contradicts expected" in technique.results[0].detail


class TestOvertHTTP:
    def test_detects_dns_stage_blocking(self):
        env = build_environment(censored=True, seed=11, population_size=4)
        technique = OvertHTTPMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=20.0)
        result = technique.results[0]
        assert result.verdict is Verdict.DNS_POISONED
        assert result.evidence["stage"] == "dns"

    def test_detects_http_reset_when_dns_clean(self):
        env = build_environment(censored=True, seed=11, population_size=4)
        env.censor.policy.dns_poisoning = False  # force the HTTP stage
        technique = OvertHTTPMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=20.0)
        assert technique.results[0].verdict is Verdict.BLOCKED_RST

    def test_detects_block_page(self):
        env = build_environment(censored=True, seed=11, population_size=4)
        env.censor.policy.dns_poisoning = False
        env.censor.policy.http_block_page = True
        technique = OvertHTTPMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=20.0)
        assert technique.results[0].verdict is Verdict.HTTP_BLOCKPAGE

    def test_control_accessible(self):
        env = build_environment(censored=True, seed=11, population_size=4)
        technique = OvertHTTPMeasurement(env.ctx, ["example.org"])
        technique.start()
        env.run(duration=20.0)
        assert technique.results[0].verdict is Verdict.ACCESSIBLE

    def test_overt_http_is_attributed_when_content_flows(self):
        """The baseline's defining risk: surveillance attributes the user."""
        env = build_environment(censored=False, seed=11, population_size=4)
        technique = OvertHTTPMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=20.0)
        assert env.surveillance.attributed_alerts_for_user("measurer")
