"""Tests for Method #2 (spam) and Method #3 (DDoS) measurements."""

import pytest

from repro.core import DDoSMeasurement, SpamMeasurement, Verdict
from repro.core.evaluation import build_environment


class TestSpamMeasurement:
    def test_poisoned_mx_detected(self):
        env = build_environment(censored=True, seed=30, population_size=4)
        technique = SpamMeasurement(env.ctx, ["twitter.com", "example.org"])
        technique.start()
        env.run(duration=30.0)
        verdicts = {r.target: r.verdict for r in technique.results}
        assert verdicts["twitter.com"] is Verdict.DNS_POISONED
        assert verdicts["example.org"] is Verdict.ACCESSIBLE

    def test_open_network_delivers_spam(self):
        env = build_environment(censored=False, seed=30, population_size=4)
        technique = SpamMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=30.0)
        assert technique.results[0].verdict is Verdict.ACCESSIBLE
        assert technique.results[0].detail == "spam delivered end-to-end"
        # The message really landed in the target's mailbox.
        assert env.servers["blocked_mail"].mailbox

    def test_evidence_stage_recorded(self):
        env = build_environment(censored=True, seed=30, population_size=4)
        technique = SpamMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=30.0)
        assert technique.results[0].evidence["stage"] == "mx"

    def test_smtp_ip_blocking_detected(self):
        env = build_environment(censored=True, seed=30, population_size=4)
        env.censor.policy.dns_poisoning = False
        env.censor.policy.blocked_ips.add(env.topo.blocked_mail.ip)
        technique = SpamMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=30.0)
        result = technique.results[0]
        assert result.verdict is Verdict.BLOCKED_TIMEOUT
        assert result.evidence["stage"] == "smtp"

    def test_lookup_only_mode(self):
        env = build_environment(censored=False, seed=30, population_size=4)
        technique = SpamMeasurement(env.ctx, ["twitter.com"], deliver_message=False)
        technique.start()
        env.run(duration=30.0)
        assert technique.results[0].verdict is Verdict.ACCESSIBLE
        assert technique.results[0].detail == "SMTP connect succeeded"
        assert not env.servers["blocked_mail"].mailbox

    def test_delivered_message_scores_as_spam(self):
        """Figure 2's premise end-to-end: what lands in the mailbox is spam."""
        from repro.spamfilter import SPAM_THRESHOLD, SpamScorer

        env = build_environment(censored=False, seed=30, population_size=4)
        technique = SpamMeasurement(env.ctx, ["twitter.com"])
        technique.start()
        env.run(duration=30.0)
        message = env.servers["blocked_mail"].mailbox[0]
        assert SpamScorer().score(message) >= SPAM_THRESHOLD

    def test_full_campaign_evades_surveillance(self):
        from repro.core.evaluation import BLOCKED_TARGETS_FULL, CONTROL_TARGETS_FULL

        env = build_environment(censored=True, seed=30, population_size=4)
        technique = SpamMeasurement(
            env.ctx, list(BLOCKED_TARGETS_FULL) + CONTROL_TARGETS_FULL
        )
        technique.start()
        env.run(duration=60.0)
        assert env.surveillance.attributed_alerts_for_user("measurer") == []


class TestDDoSMeasurement:
    def test_reset_censorship_characterized(self):
        env = build_environment(censored=True, seed=31, population_size=4)
        env.censor.policy.dns_poisoning = False
        technique = DDoSMeasurement(env.ctx, ["twitter.com"], requests_per_target=20)
        technique.start()
        env.run(duration=60.0)
        result = technique.results[0]
        assert result.verdict is Verdict.BLOCKED_RST
        assert result.samples == 20
        assert result.evidence["samples"]["reset"] >= 10

    def test_accessible_target(self):
        env = build_environment(censored=True, seed=31, population_size=4)
        technique = DDoSMeasurement(env.ctx, ["example.org"], requests_per_target=15)
        technique.start()
        env.run(duration=60.0)
        result = technique.results[0]
        assert result.verdict is Verdict.ACCESSIBLE
        assert result.evidence["samples"]["ok"] == 15

    def test_dns_stage_poisoning_short_circuits(self):
        env = build_environment(censored=True, seed=31, population_size=4)
        technique = DDoSMeasurement(env.ctx, ["twitter.com"], requests_per_target=10)
        technique.start()
        env.run(duration=60.0)
        assert technique.results[0].verdict is Verdict.DNS_POISONED
        assert technique.results[0].evidence["stage"] == "dns"

    def test_null_route_characterized_as_timeout(self):
        env = build_environment(censored=True, seed=31, population_size=4)
        env.censor.policy.dns_poisoning = False
        env.censor.policy.keyword_filtering = False
        env.censor.policy.http_host_filtering = False
        env.censor.policy.blocked_ips.add(env.topo.blocked_web.ip)
        technique = DDoSMeasurement(env.ctx, ["twitter.com"], requests_per_target=8)
        technique.start()
        env.run(duration=120.0)
        assert technique.results[0].verdict is Verdict.BLOCKED_TIMEOUT

    def test_flood_classified_and_discarded(self):
        """Evasion: the burst trips the DDoS detection, so the MVR discards
        it and suppresses attribution."""
        env = build_environment(censored=True, seed=31, population_size=4)
        env.censor.policy.dns_poisoning = False
        technique = DDoSMeasurement(env.ctx, ["twitter.com"], requests_per_target=30)
        technique.start()
        env.run(duration=60.0)
        assert env.surveillance.attributed_alerts_for_user("measurer") == []
        assert env.surveillance.discarded_by_class.get("ddos", 0) > 0

    def test_block_page_characterized(self):
        env = build_environment(censored=True, seed=31, population_size=4)
        env.censor.policy.dns_poisoning = False
        env.censor.policy.http_block_page = True
        technique = DDoSMeasurement(env.ctx, ["twitter.com"], requests_per_target=10)
        technique.start()
        env.run(duration=60.0)
        assert technique.results[0].verdict is Verdict.HTTP_BLOCKPAGE


class TestDDoSUnderLoss:
    def _lossy_env(self, censored, seed=33):
        env = build_environment(censored=censored, seed=seed, population_size=4)
        for link in env.topo.network.links:
            if link.connects(env.topo.border_router, env.topo.transit_router):
                link.loss = 0.10
        return env

    def test_high_threshold_still_detects_real_censorship(self):
        """Censorship fails ~every sample, so even a 0.8 threshold trips."""
        env = self._lossy_env(censored=True)
        env.censor.policy.dns_poisoning = False
        technique = DDoSMeasurement(env.ctx, ["twitter.com"],
                                    requests_per_target=25,
                                    blocked_fraction_threshold=0.8)
        technique.start()
        env.run(duration=120.0)
        assert technique.results[0].blocked

    def test_high_threshold_tolerates_loss(self):
        """Stochastic loss stays under the 0.8 threshold: no false block."""
        env = self._lossy_env(censored=False)
        technique = DDoSMeasurement(env.ctx, ["weather.gov"],
                                    requests_per_target=25,
                                    blocked_fraction_threshold=0.8)
        technique.start()
        env.run(duration=120.0)
        assert technique.results[0].verdict is Verdict.ACCESSIBLE

    def test_dns_retry_recovers_lost_query(self):
        env = self._lossy_env(censored=False, seed=35)
        # Make the loss brutal for DNS but allow retries to get through.
        technique = DDoSMeasurement(env.ctx, ["example.org"],
                                    requests_per_target=5, dns_retries=5)
        technique.start()
        env.run(duration=120.0)
        assert technique.results[0].verdict is Verdict.ACCESSIBLE
