"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for command in ("matrix", "vantage", "risk", "syria", "sav", "ethics"):
            args = parser.parse_args([command] if command != "risk"
                                     else [command, "--technique", "spam"])
            assert args.command == command

    def test_risk_technique_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["risk", "--technique", "nonsense"])


class TestCommands:
    def test_ethics(self, capsys):
        assert main(["ethics", "--prefix", "16"]) == 0
        out = capsys.readouterr().out
        assert "65536" in out

    def test_ethics_custom_prefix(self, capsys):
        assert main(["ethics", "--prefix", "24", "--queries-per-ip", "2"]) == 0
        assert "512" in capsys.readouterr().out

    def test_sav(self, capsys):
        assert main(["sav", "--clients", "2000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "can spoof within /24" in out

    def test_syria(self, capsys):
        assert main(["syria", "--population", "5000"]) == 0
        out = capsys.readouterr().out
        assert "users touching censored content" in out

    def test_vantage(self, capsys):
        assert main(["vantage", "--duration", "20", "--domains",
                     "twitter.com", "example.org"]) == 0
        out = capsys.readouterr().out
        assert "INJECTED" in out
        assert "open" in out

    def test_vantage_open_network(self, capsys):
        assert main(["vantage", "--open", "--duration", "20", "--domains",
                     "twitter.com"]) == 0
        out = capsys.readouterr().out
        assert "INJECTED" not in out

    def test_vantage_unknown_domain_warns(self, capsys):
        assert main(["vantage", "--duration", "5", "--domains", "unknown.example"]) == 0
        assert "skipping" in capsys.readouterr().err

    def test_risk_spam_evades(self, capsys):
        assert main(["risk", "--technique", "spam", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "evaded (paper criterion)" in out
        assert "True" in out

    def test_risk_overt_attributed(self, capsys):
        assert main(["risk", "--technique", "overt-dns", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "attributed alerts" in out


class TestMatrixCommand:
    def test_matrix_runs_and_reports(self, capsys):
        assert main(["matrix", "--duration", "30", "--cover", "4"]) == 0
        out = capsys.readouterr().out
        assert "accuracy/evasion matrix" in out
        assert "SUCCESS" in out
        assert "fails-evasion" in out  # the overt baseline row


class TestDeckCommand:
    def test_deck_stealthy(self, capsys):
        assert main(["deck", "--posture", "stealthy", "--duration", "60",
                     "--domains", "twitter.com", "example.org"]) == 0
        out = capsys.readouterr().out
        assert "deck results" in out
        assert "blocked domains: twitter.com" in out
        assert "evaded=True" in out

    def test_deck_json_output(self, capsys):
        assert main(["deck", "--posture", "stealthy", "--duration", "60",
                     "--domains", "twitter.com", "--json"]) == 0
        out = capsys.readouterr().out
        assert '"kind": "campaign"' in out
