"""Tests for the risk model and the accuracy/evasion evaluation harness."""

import pytest

from repro.core import (
    OvertHTTPMeasurement,
    RiskAssessment,
    SpamMeasurement,
    Verdict,
    assess_risk,
    comparison_table,
    evaluate_technique,
)
from repro.core.evaluation import (
    BLOCKED_TARGETS,
    CONTROL_TARGETS,
    build_environment,
)


class TestRiskAssessment:
    def test_evaded_when_no_attribution(self):
        risk = RiskAssessment("t", attributed_alerts=0, true_origin_alerts=0,
                              suspect_rank=None, attribution_confidence=0.0,
                              suspect_entropy=0.0, investigated=False)
        assert risk.evaded
        assert risk.risk_score() == 0.0

    def test_investigation_dominates(self):
        risk = RiskAssessment("t", attributed_alerts=1, true_origin_alerts=1,
                              suspect_rank=1, attribution_confidence=0.1,
                              suspect_entropy=3.0, investigated=True)
        assert risk.risk_score() == 1.0

    def test_entropy_discounts_risk(self):
        confident = RiskAssessment("t", 5, 5, 1, 1.0, 0.0, False)
        diluted = RiskAssessment("t", 5, 5, 1, 0.1, 3.5, False)
        assert diluted.risk_score() < confident.risk_score()

    def test_comparison_table_renders(self):
        rows = [RiskAssessment("overt", 3, 3, 1, 1.0, 0.0, True),
                RiskAssessment("spam", 0, 0, None, 0.0, 0.0, False)]
        table = comparison_table(rows)
        assert "overt" in table and "spam" in table
        assert "technique" in table


class TestAssessRisk:
    def test_overt_measurer_assessed_risky(self):
        env = build_environment(censored=False, seed=50, population_size=4)
        env.surveillance.analyst.escalation_threshold = 1
        technique = OvertHTTPMeasurement(env.ctx, BLOCKED_TARGETS)
        technique.start()
        env.run(duration=30.0)
        risk = assess_risk(env.surveillance, "overt-http", "measurer",
                           env.topo.measurement_client.ip, now=env.sim.now)
        assert not risk.evaded
        assert risk.attributed_alerts >= 1
        assert risk.suspect_rank == 1
        assert risk.investigated
        assert risk.risk_score() == 1.0

    def test_spam_measurer_assessed_safe(self):
        env = build_environment(censored=True, seed=50, population_size=4)
        technique = SpamMeasurement(env.ctx, BLOCKED_TARGETS + CONTROL_TARGETS)
        technique.start()
        env.run(duration=30.0)
        risk = assess_risk(env.surveillance, "spam", "measurer",
                           env.topo.measurement_client.ip, now=env.sim.now)
        assert risk.evaded
        assert not risk.investigated


class TestEvaluateTechnique:
    def test_spam_outcome_fully_successful(self):
        outcome = evaluate_technique(
            lambda env: SpamMeasurement(env.ctx, BLOCKED_TARGETS + CONTROL_TARGETS),
            "spam", seed=51,
        )
        assert outcome.accuracy == 1.0
        assert outcome.detects_censorship
        assert outcome.no_false_positives
        assert outcome.evades_surveillance
        assert outcome.successful

    def test_overt_outcome_accurate_but_not_evasive(self):
        outcome = evaluate_technique(
            lambda env: OvertHTTPMeasurement(env.ctx, BLOCKED_TARGETS + CONTROL_TARGETS),
            "overt-http", seed=51,
        )
        assert outcome.accuracy == 1.0
        assert not outcome.evades_surveillance
        assert not outcome.successful

    def test_run_records_expose_verdicts(self):
        outcome = evaluate_technique(
            lambda env: SpamMeasurement(env.ctx, BLOCKED_TARGETS + CONTROL_TARGETS),
            "spam", seed=51,
        )
        assert outcome.censored_run.verdict_for("twitter.com").indicates_blocking
        assert outcome.control_run.verdict_for("twitter.com") is Verdict.ACCESSIBLE
        assert outcome.censored_run.censor_events > 0
        assert outcome.control_run.censor_events == 0


class TestBuildEnvironment:
    def test_censored_flag_controls_policy(self):
        censored = build_environment(censored=True, seed=52, population_size=3)
        open_env = build_environment(censored=False, seed=52, population_size=3)
        assert censored.censor.policy.enabled()
        assert not open_env.censor.policy.enabled()

    def test_population_traffic_optional(self):
        env = build_environment(censored=False, seed=52, population_size=5,
                                with_population_traffic=True, population_duration=2.0)
        env.run(duration=5.0)
        assert env.population_mix is not None
        assert env.population_mix.stats()["web_requests"] > 0

    def test_cover_ips_subset(self):
        env = build_environment(seed=52, population_size=10)
        assert len(env.cover_ips(4)) == 4
        assert len(env.cover_ips()) == 10

    def test_expected_addresses_populated(self):
        env = build_environment(seed=52, population_size=3)
        assert env.ctx.expected_addresses["twitter.com"] == env.topo.blocked_web.ip
