"""Tests for the longitudinal (censorship weather) campaign."""

import pytest

from repro.core import OvertDNSMeasurement, Verdict, build_environment
from repro.core.longitudinal import DAY, LongitudinalCampaign


def weather_world(epochs=5, interval=DAY):
    env = build_environment(censored=True, seed=34, population_size=3)
    campaign = LongitudinalCampaign(
        env.sim,
        technique_factory=lambda: OvertDNSMeasurement(
            env.ctx, ["twitter.com", "example.org", "archive.org"]
        ),
        interval=interval,
        epochs=epochs,
    )
    return env, campaign


class TestCampaign:
    def test_runs_all_epochs(self):
        env, campaign = weather_world(epochs=4)
        campaign.start()
        env.run(duration=4 * DAY)
        assert len(campaign.epochs) == 4
        assert all(len(epoch.verdicts) == 3 for epoch in campaign.epochs)

    def test_stable_blocklist_no_transitions(self):
        env, campaign = weather_world(epochs=3)
        campaign.start()
        env.run(duration=3 * DAY)
        assert campaign.transitions() == []
        timeline = campaign.timeline("twitter.com")
        assert all(v is Verdict.DNS_POISONED for v in timeline)

    def test_detects_newly_blocked_domain(self):
        env, campaign = weather_world(epochs=5)
        # On day 2 the censor adds archive.org to the blocklist.
        env.sim.at(2 * DAY - 100.0,
                   lambda: env.censor.policy.blocked_domains.append("archive.org"))
        campaign.start()
        env.run(duration=5 * DAY)
        changes = campaign.transitions()
        assert len(changes) == 1
        change = changes[0]
        assert change.target == "archive.org"
        assert change.epoch == 2
        assert change.newly_blocked
        assert not change.newly_unblocked

    def test_detects_unblocking(self):
        env, campaign = weather_world(epochs=4)
        env.sim.at(DAY + 50.0,
                   lambda: env.censor.policy.blocked_domains.remove("twitter.com"))
        campaign.start()
        env.run(duration=4 * DAY)
        unblocked = [c for c in campaign.transitions() if c.newly_unblocked]
        assert len(unblocked) == 1
        assert unblocked[0].target == "twitter.com"
        assert campaign.timeline("twitter.com")[0] is Verdict.DNS_POISONED
        assert campaign.timeline("twitter.com")[-1] is Verdict.ACCESSIBLE

    def test_weather_report_renders(self):
        env, campaign = weather_world(epochs=2)
        campaign.start()
        env.run(duration=2 * DAY)
        report = campaign.weather_report()
        assert "censorship weather" in report
        assert "twitter.com" in report
        assert "BLOCKED" in report and "open" in report

    def test_epoch_count_validated(self):
        env, _ = weather_world()
        with pytest.raises(ValueError):
            LongitudinalCampaign(env.sim, lambda: None, epochs=0)
