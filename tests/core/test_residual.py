"""Tests for the residual-blocking (penalty window) measurement."""

import pytest

from repro.core import Verdict, build_environment
from repro.core.residual import ResidualBlockingMeasurement


def run_measurement(residual_seconds, probe_interval=1.0, max_wait=60.0, seed=29):
    env = build_environment(censored=True, seed=seed, population_size=4)
    env.censor.policy.dns_poisoning = False
    env.censor.policy.residual_block_seconds = residual_seconds
    technique = ResidualBlockingMeasurement(
        env.ctx,
        env.topo.control_web.ip,  # an unblocked server; the keyword triggers
        probe_interval=probe_interval,
        max_wait=max_wait,
    )
    technique.start()
    env.run(duration=max_wait + residual_seconds + 30.0)
    return env, technique


class TestResidualMeasurement:
    def test_measures_penalty_duration(self):
        env, technique = run_measurement(residual_seconds=10.0)
        result = technique.results[0]
        assert result.verdict is Verdict.BLOCKED_RST
        measured = result.evidence["penalty_seconds"]
        # Granularity: one probe interval of slack past the true window.
        assert 10.0 <= measured <= 12.5
        assert env.censor.residual_drops > 0

    def test_longer_penalty_measured_longer(self):
        _env, short = run_measurement(residual_seconds=5.0)
        _env2, long = run_measurement(residual_seconds=20.0)
        assert (
            short.results[0].evidence["penalty_seconds"]
            < long.results[0].evidence["penalty_seconds"]
        )

    def test_zero_penalty_recovers_immediately(self):
        _env, technique = run_measurement(residual_seconds=0.0)
        result = technique.results[0]
        measured = result.evidence["penalty_seconds"]
        assert measured <= 2.5  # first or second probe already succeeds

    def test_trigger_reset_observed(self):
        _env, technique = run_measurement(residual_seconds=5.0)
        assert technique.results[0].evidence["trigger_reset_seen"]

    def test_gives_up_past_max_wait(self):
        _env, technique = run_measurement(residual_seconds=500.0, max_wait=15.0)
        result = technique.results[0]
        assert result.verdict is Verdict.BLOCKED_TIMEOUT
        assert "still active" in result.detail
        assert technique.done
