"""Tests for the Section-4 spoofed-mimicry techniques."""

import pytest

from repro.core import (
    MimicryServer,
    SpoofedSYNReachability,
    StatefulMimicryMeasurement,
    StatelessSpoofedDNSMeasurement,
    Verdict,
    shared_isn,
)
from repro.core.evaluation import build_environment


class TestStatelessSpoofedDNS:
    def test_verdicts_match_censorship_state(self):
        env = build_environment(censored=True, seed=40, population_size=8)
        technique = StatelessSpoofedDNSMeasurement(
            env.ctx, ["twitter.com", "example.org"], env.cover_ips(5)
        )
        technique.start()
        env.run(duration=30.0)
        verdicts = {r.target: r.verdict for r in technique.results}
        assert verdicts["twitter.com"] is Verdict.DNS_POISONED
        assert verdicts["example.org"] is Verdict.ACCESSIBLE

    def test_cover_queries_sent(self):
        env = build_environment(censored=False, seed=40, population_size=8)
        technique = StatelessSpoofedDNSMeasurement(
            env.ctx, ["twitter.com"], env.cover_ips(5)
        )
        technique.start()
        env.run(duration=30.0)
        assert technique.cover_queries_sent == 5

    def test_attribution_diluted_across_cover_hosts(self):
        """With a full blocked list, the bulk-resolution rule fires for the
        measurer AND every cover host — confidence collapses to ~1/(N+1)."""
        from repro.core.evaluation import BLOCKED_TARGETS_FULL

        env = build_environment(censored=True, seed=40, population_size=12)
        technique = StatelessSpoofedDNSMeasurement(
            env.ctx, list(BLOCKED_TARGETS_FULL), env.cover_ips(10)
        )
        technique.start()
        env.run(duration=60.0)
        report = env.surveillance.suspect_report()
        assert report.total > 0
        assert report.confidence("measurer") <= 1.0 / 10
        assert report.entropy() > 3.0

    def test_spoofed_queries_blocked_by_strict_sav(self):
        from repro.spoofing import SAVFilter

        env = build_environment(censored=False, seed=40, population_size=8,
                                sav_filter=SAVFilter.strict())
        technique = StatelessSpoofedDNSMeasurement(
            env.ctx, ["example.org"], env.cover_ips(5)
        )
        technique.start()
        env.run(duration=30.0)
        # Real query still answers; spoofed cover died at the border.
        assert technique.results[0].verdict is Verdict.ACCESSIBLE
        assert env.topo.border_router.sav_drops == 5


class TestSpoofedSYN:
    def test_reachability_verdicts(self):
        env = build_environment(censored=True, seed=41, population_size=8)
        env.censor.policy.blocked_ips.add(env.topo.blocked_web.ip)
        technique = SpoofedSYNReachability(
            env.ctx,
            targets=[(env.topo.blocked_web.ip, 80), (env.topo.control_web.ip, 80)],
            cover_ips=env.cover_ips(5),
        )
        technique.start()
        env.run(duration=30.0)
        verdicts = {r.target: r.verdict for r in technique.results}
        assert verdicts[f"{env.topo.blocked_web.ip}:80"] is Verdict.BLOCKED_TIMEOUT
        assert verdicts[f"{env.topo.control_web.ip}:80"] is Verdict.ACCESSIBLE

    def test_rst_blocking_detected(self):
        env = build_environment(censored=True, seed=41, population_size=8)
        env.censor.policy.rst_endpoints.add((env.topo.blocked_web.ip, 80))
        technique = SpoofedSYNReachability(
            env.ctx, [(env.topo.blocked_web.ip, 80)], env.cover_ips(3)
        )
        technique.start()
        env.run(duration=30.0)
        assert technique.results[0].verdict is Verdict.BLOCKED_RST


class TestSharedISN:
    def test_deterministic(self):
        a = shared_isn(b"secret", 80, "10.1.0.5", 40000)
        b = shared_isn(b"secret", 80, "10.1.0.5", 40000)
        assert a == b

    def test_varies_with_tuple(self):
        base = shared_isn(b"secret", 80, "10.1.0.5", 40000)
        assert shared_isn(b"secret", 80, "10.1.0.5", 40001) != base
        assert shared_isn(b"other", 80, "10.1.0.5", 40000) != base

    def test_positive_31_bit(self):
        for sport in range(100):
            isn = shared_isn(b"s", 80, "10.0.0.1", sport)
            assert 1 <= isn < 2**31


class TestStatefulMimicry:
    def _technique(self, env, payloads, covers=3):
        return StatefulMimicryMeasurement(
            env.ctx,
            server=env.mimicry_server,
            probe_payloads=payloads,
            cover_ips=env.cover_ips(covers),
        )

    def test_blind_spoofed_flows_reach_server(self):
        env = build_environment(censored=False, seed=42, population_size=8)
        payload = b"GET /innocuous HTTP/1.1\r\nHost: test\r\n\r\n"
        technique = self._technique(env, [payload])
        technique.start()
        env.run(duration=30.0)
        assert len(technique.results) == 4  # 1 real + 3 covers
        assert all(r.verdict is Verdict.ACCESSIBLE for r in technique.results)
        assert technique.verdict_for_payload(payload) is Verdict.ACCESSIBLE

    def test_keyword_probe_detected_when_censored(self):
        env = build_environment(censored=True, seed=42, population_size=8)
        payload = b"GET /falun HTTP/1.1\r\nHost: test\r\n\r\n"
        technique = self._technique(env, [payload])
        technique.start()
        env.run(duration=30.0)
        verdict = technique.verdict_for_payload(payload)
        assert verdict is Verdict.BLOCKED_RST

    def test_ttl_limited_synack_never_reaches_cover_hosts(self):
        """The replay fix: cover hosts must see no SYN/ACK (else they RST)."""
        env = build_environment(censored=False, seed=42, population_size=8)
        cover = env.topo.population[0]
        synacks = []
        cover.stack.add_sniffer(
            lambda p: synacks.append(p) if p.tcp is not None and p.tcp.is_synack else None
        )
        payload = b"GET / HTTP/1.1\r\n\r\n"
        technique = StatefulMimicryMeasurement(
            env.ctx, env.mimicry_server, [payload], cover_ips=[cover.ip]
        )
        technique.start()
        env.run(duration=30.0)
        assert synacks == []
        # And the spoofed flow still delivered its request.
        spoofed = [r for r in technique.results if r.evidence["spoofed"]]
        assert spoofed and spoofed[0].verdict is Verdict.ACCESSIBLE

    def test_mixed_payloads(self):
        env = build_environment(censored=True, seed=42, population_size=8)
        good = b"GET /ok HTTP/1.1\r\n\r\n"
        bad = b"GET /tiananmen HTTP/1.1\r\n\r\n"
        technique = self._technique(env, [good, bad], covers=2)
        technique.start()
        env.run(duration=60.0)
        assert technique.verdict_for_payload(good) is Verdict.ACCESSIBLE
        assert technique.verdict_for_payload(bad) is Verdict.BLOCKED_RST

    def test_no_attribution_for_measurer(self):
        env = build_environment(censored=True, seed=42, population_size=8)
        payload = b"GET /falun HTTP/1.1\r\n\r\n"
        technique = self._technique(env, [payload])
        technique.start()
        env.run(duration=30.0)
        report = env.surveillance.suspect_report()
        # Keyword alerts spread over real + cover sources.
        assert report.confidence("measurer") < 0.5
