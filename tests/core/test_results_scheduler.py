"""Unit tests for verdicts, results, and campaign scheduling."""

import pytest

from repro.core import MeasurementCampaign, MeasurementResult, Verdict, summarize
from repro.core.results import blocked_verdicts
from repro.netsim import Simulator


class TestVerdict:
    def test_blocking_verdicts(self):
        assert Verdict.BLOCKED_RST.indicates_blocking
        assert Verdict.BLOCKED_TIMEOUT.indicates_blocking
        assert Verdict.DNS_POISONED.indicates_blocking
        assert Verdict.HTTP_BLOCKPAGE.indicates_blocking
        assert Verdict.DNS_FAILURE.indicates_blocking

    def test_non_blocking_verdicts(self):
        assert not Verdict.ACCESSIBLE.indicates_blocking
        assert not Verdict.INCONCLUSIVE.indicates_blocking

    def test_blocked_verdicts_set(self):
        assert Verdict.BLOCKED_RST in blocked_verdicts()
        assert Verdict.ACCESSIBLE not in blocked_verdicts()


class TestMeasurementResult:
    def test_blocked_property(self):
        result = MeasurementResult("t", "x.com", Verdict.BLOCKED_RST)
        assert result.blocked
        assert not MeasurementResult("t", "x.com", Verdict.ACCESSIBLE).blocked

    def test_str_contains_fields(self):
        result = MeasurementResult("scan", "x.com", Verdict.ACCESSIBLE, detail="ok")
        assert "scan" in str(result) and "x.com" in str(result)

    def test_summarize(self):
        results = [
            MeasurementResult("t", "a", Verdict.ACCESSIBLE),
            MeasurementResult("t", "b", Verdict.ACCESSIBLE),
            MeasurementResult("t", "c", Verdict.BLOCKED_RST),
        ]
        assert summarize(results) == {"accessible": 2, "blocked_rst": 1}


class _FakeTechnique:
    name = "fake"

    def __init__(self, sim, results_to_emit=1):
        self.sim = sim
        self.results = []
        self._count = results_to_emit
        self.started_at = None

    def start(self):
        self.started_at = self.sim.now
        for index in range(self._count):
            self.results.append(
                MeasurementResult("fake", f"target{index}", Verdict.ACCESSIBLE)
            )

    @property
    def done(self):
        return len(self.results) >= self._count


class TestCampaign:
    def test_staggered_starts(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        first, second = _FakeTechnique(sim), _FakeTechnique(sim)
        campaign.add(first, at=0.0).add(second, at=5.0)
        campaign.run(duration=10.0)
        assert first.started_at == 0.0
        assert second.started_at == 5.0

    def test_all_results_aggregated(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        campaign.add(_FakeTechnique(sim, 2)).add(_FakeTechnique(sim, 3))
        campaign.run(duration=1.0)
        assert len(campaign.all_results()) == 5

    def test_results_by_technique(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        campaign.add(_FakeTechnique(sim, 2))
        campaign.run(duration=1.0)
        assert len(campaign.results_by_technique()["fake"]) == 2

    def test_done_tracks_all(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        campaign.add(_FakeTechnique(sim), at=0.0)
        campaign.add(_FakeTechnique(sim), at=100.0)
        campaign.run(duration=1.0)
        assert not campaign.done  # second never started
        sim.run(until=200.0)
        assert campaign.done


class TestPostStartAdd:
    """Regression: ``add()`` after ``start()`` was silently never
    scheduled, so ``done`` stayed false and ``run_until_done`` burned its
    whole ``max_duration``."""

    def test_add_after_start_schedules_immediately(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        campaign.start()
        late = _FakeTechnique(sim)
        campaign.add(late, at=2.0)
        sim.run(until=5.0)
        assert late.started_at == 2.0
        assert campaign.done

    def test_add_with_past_offset_fires_now(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        campaign.start()
        sim.run(until=10.0)  # campaign start was at t=0; offset 2 is past
        late = _FakeTechnique(sim)
        campaign.add(late, at=2.0)
        sim.run(until=sim.now + 0.1)
        assert late.started_at == 10.0

    def test_post_start_add_completes_run_until_done_quickly(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        campaign.start()
        campaign.add(_FakeTechnique(sim))
        assert campaign.run_until_done(max_duration=600.0) is True
        assert sim.now < 600.0  # did not burn the whole budget

    def test_offsets_are_relative_to_campaign_start_time(self):
        sim = Simulator()
        sim.run(until=50.0)
        campaign = MeasurementCampaign(sim)
        technique = _FakeTechnique(sim)
        campaign.add(technique, at=3.0)
        campaign.run(duration=10.0)
        assert technique.started_at == 53.0

    def test_start_is_idempotent(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        technique = _FakeTechnique(sim, results_to_emit=1)
        campaign.add(technique)
        campaign.start()
        campaign.start()  # second start must not double-schedule
        sim.run(until=1.0)
        assert len(technique.results) == 1
        assert campaign.started


class TestEmptyCampaign:
    def test_empty_campaign_is_vacuously_done(self):
        campaign = MeasurementCampaign(Simulator())
        assert campaign.done

    def test_empty_run_until_done_returns_without_burning_time(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        assert campaign.run_until_done(max_duration=600.0) is True
        assert sim.now == 0.0
