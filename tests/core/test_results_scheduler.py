"""Unit tests for verdicts, results, and campaign scheduling."""

import pytest

from repro.core import MeasurementCampaign, MeasurementResult, Verdict, summarize
from repro.core.results import blocked_verdicts
from repro.netsim import Simulator


class TestVerdict:
    def test_blocking_verdicts(self):
        assert Verdict.BLOCKED_RST.indicates_blocking
        assert Verdict.BLOCKED_TIMEOUT.indicates_blocking
        assert Verdict.DNS_POISONED.indicates_blocking
        assert Verdict.HTTP_BLOCKPAGE.indicates_blocking
        assert Verdict.DNS_FAILURE.indicates_blocking

    def test_non_blocking_verdicts(self):
        assert not Verdict.ACCESSIBLE.indicates_blocking
        assert not Verdict.INCONCLUSIVE.indicates_blocking

    def test_blocked_verdicts_set(self):
        assert Verdict.BLOCKED_RST in blocked_verdicts()
        assert Verdict.ACCESSIBLE not in blocked_verdicts()


class TestMeasurementResult:
    def test_blocked_property(self):
        result = MeasurementResult("t", "x.com", Verdict.BLOCKED_RST)
        assert result.blocked
        assert not MeasurementResult("t", "x.com", Verdict.ACCESSIBLE).blocked

    def test_str_contains_fields(self):
        result = MeasurementResult("scan", "x.com", Verdict.ACCESSIBLE, detail="ok")
        assert "scan" in str(result) and "x.com" in str(result)

    def test_summarize(self):
        results = [
            MeasurementResult("t", "a", Verdict.ACCESSIBLE),
            MeasurementResult("t", "b", Verdict.ACCESSIBLE),
            MeasurementResult("t", "c", Verdict.BLOCKED_RST),
        ]
        assert summarize(results) == {"accessible": 2, "blocked_rst": 1}


class _FakeTechnique:
    name = "fake"

    def __init__(self, sim, results_to_emit=1):
        self.sim = sim
        self.results = []
        self._count = results_to_emit
        self.started_at = None

    def start(self):
        self.started_at = self.sim.now
        for index in range(self._count):
            self.results.append(
                MeasurementResult("fake", f"target{index}", Verdict.ACCESSIBLE)
            )

    @property
    def done(self):
        return len(self.results) >= self._count


class TestCampaign:
    def test_staggered_starts(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        first, second = _FakeTechnique(sim), _FakeTechnique(sim)
        campaign.add(first, at=0.0).add(second, at=5.0)
        campaign.run(duration=10.0)
        assert first.started_at == 0.0
        assert second.started_at == 5.0

    def test_all_results_aggregated(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        campaign.add(_FakeTechnique(sim, 2)).add(_FakeTechnique(sim, 3))
        campaign.run(duration=1.0)
        assert len(campaign.all_results()) == 5

    def test_results_by_technique(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        campaign.add(_FakeTechnique(sim, 2))
        campaign.run(duration=1.0)
        assert len(campaign.results_by_technique()["fake"]) == 2

    def test_done_tracks_all(self):
        sim = Simulator()
        campaign = MeasurementCampaign(sim)
        campaign.add(_FakeTechnique(sim), at=0.0)
        campaign.add(_FakeTechnique(sim), at=100.0)
        campaign.run(duration=1.0)
        assert not campaign.done  # second never started
        sim.run(until=200.0)
        assert campaign.done
